package discovery

import (
	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// Aurum implements LSH-profiled discovery into an enterprise knowledge
// graph (Fernandez et al., Sec. 6.2.1): each column is profiled with a
// MinHash signature; signatures landing in the same LSH bucket become
// candidate pairs, which turns all-pairs O(n^2) comparison into a
// linear pass; candidate pairs with sufficient estimated Jaccard become
// weighted EKG edges; attribute-name similarity (TF-IDF cosine) and
// PK-FK candidates add further edge types. Queries run against the EKG.
type Aurum struct {
	// MinJaccard is the estimated-similarity threshold for content
	// edges.
	MinJaccard float64
	// MinNameSim is the TF-IDF cosine threshold for name edges.
	MinNameSim float64
	// UpdateThreshold is the value-drift fraction above which a
	// re-indexed column's signature and edges are recomputed.
	UpdateThreshold float64

	ekg   *metamodel.EKG
	lsh   *sketch.LSHIndex
	sigs  map[string]*sketch.MinHash
	sets  map[string]map[string]struct{}
	names map[string][]string // column key -> name tokens
	keyed map[string]bool     // column key -> is candidate key
	tfidf *sketch.TFIDF
}

// NewAurum creates an Aurum instance with the survey-typical defaults.
func NewAurum() *Aurum {
	return &Aurum{
		MinJaccard:      0.5,
		MinNameSim:      0.6,
		UpdateThreshold: 0.2,
		ekg:             metamodel.NewEKG(),
		lsh:             sketch.NewLSHIndex(16, 8),
		sigs:            map[string]*sketch.MinHash{},
		sets:            map[string]map[string]struct{}{},
		names:           map[string][]string{},
		keyed:           map[string]bool{},
	}
}

// Name implements Discoverer.
func (a *Aurum) Name() string { return "Aurum" }

// EKG exposes the built knowledge graph for path queries.
func (a *Aurum) EKG() *metamodel.EKG { return a.ekg }

// Index implements Discoverer: profile columns, build the LSH index,
// then materialize EKG edges from bucket collisions — one linear pass
// over columns instead of all-pairs.
func (a *Aurum) Index(tables []*table.Table) error {
	var nameDocs [][]string
	for _, t := range tables {
		var members []metamodel.ColumnRef
		for _, c := range t.Columns {
			key := columnKey(t.Name, c.Name)
			vals := textualValues(c, 0)
			set := sketch.ToSet(vals)
			sig := sketch.NewMinHash(a.lsh.SignatureLen(), vals)
			a.sigs[key] = sig
			a.sets[key] = set
			a.names[key] = sketch.Tokenize(c.Name)
			a.keyed[key] = c.IsCandidateKey(0.9)
			if err := a.lsh.Add(key, sig); err != nil {
				return err
			}
			ref := metamodel.ColumnRef{Table: t.Name, Column: c.Name}
			a.ekg.AddColumn(ref)
			members = append(members, ref)
			nameDocs = append(nameDocs, a.names[key])
		}
		a.ekg.AddHyperedge(t.Name, members)
	}
	a.tfidf = sketch.NewTFIDF(nameDocs)
	// Materialize edges from LSH candidacy (content) and name
	// similarity.
	for key, sig := range a.sigs {
		tbl, col, err := splitKey(key)
		if err != nil {
			return err
		}
		ref := metamodel.ColumnRef{Table: tbl, Column: col}
		for _, cand := range a.lsh.Query(sig, a.MinJaccard, key) {
			ctbl, ccol, err := splitKey(cand.Key)
			if err != nil {
				return err
			}
			cref := metamodel.ColumnRef{Table: ctbl, Column: ccol}
			a.ekg.Relate(ref, cref, "content", cand.Jaccard)
		}
		a.relateByName(key, ref)
	}
	// PK-FK pass: Aurum first infers approximate key attributes, then
	// checks containment of other columns in them. Keyed columns are a
	// small fraction of all columns, so this pass stays near-linear.
	for key, isKey := range a.keyed {
		if !isKey {
			continue
		}
		tbl, col, err := splitKey(key)
		if err != nil {
			return err
		}
		ref := metamodel.ColumnRef{Table: tbl, Column: col}
		for okey := range a.sets {
			if okey == key {
				continue
			}
			otbl, ocol, err := splitKey(okey)
			if err != nil || otbl == tbl {
				continue
			}
			a.maybePKFK(key, okey, ref, metamodel.ColumnRef{Table: otbl, Column: ocol})
		}
	}
	return nil
}

// relateByName adds name-similarity edges against every other column
// with cosine above threshold. Name vocabulary is tiny compared to
// values, so a scan is acceptable (Aurum also treats schema signatures
// as cheap).
func (a *Aurum) relateByName(key string, ref metamodel.ColumnRef) {
	qv := a.tfidf.Vector(a.names[key])
	for okey, toks := range a.names {
		if okey == key {
			continue
		}
		sim := sketch.CosineSparse(qv, a.tfidf.Vector(toks))
		if sim >= a.MinNameSim {
			otbl, ocol, err := splitKey(okey)
			if err != nil {
				continue
			}
			a.ekg.Relate(ref, metamodel.ColumnRef{Table: otbl, Column: ocol}, "name", sim)
		}
	}
}

// maybePKFK detects primary-foreign key candidates: one side is an
// approximate key and the other side's values are mostly contained in
// it. Empty candidate sets never qualify.
func (a *Aurum) maybePKFK(k1, k2 string, r1, r2 metamodel.ColumnRef) {
	s1, s2 := a.sets[k1], a.sets[k2]
	if a.keyed[k1] && len(s2) > 0 && sketch.Containment(s2, s1) >= 0.8 {
		a.ekg.Relate(r1, r2, "pkfk", sketch.Containment(s2, s1))
	} else if a.keyed[k2] && len(s1) > 0 && sketch.Containment(s1, s2) >= 0.8 {
		a.ekg.Relate(r1, r2, "pkfk", sketch.Containment(s1, s2))
	}
}

// Update re-profiles a column after data change. Following Aurum's
// incremental maintenance, the signature and edges are recomputed only
// when the value drift (Jaccard distance between old and new sets)
// exceeds UpdateThreshold; otherwise the stored profile stands.
func (a *Aurum) Update(tableName string, c *table.Column) (changed bool, err error) {
	key := columnKey(tableName, c.Name)
	newVals := textualValues(c, 0)
	newSet := sketch.ToSet(newVals)
	old, ok := a.sets[key]
	if ok {
		drift := 1 - sketch.ExactJaccard(old, newSet)
		if drift <= a.UpdateThreshold {
			return false, nil
		}
	}
	ref := metamodel.ColumnRef{Table: tableName, Column: c.Name}
	a.ekg.RemoveRelations(ref)
	a.lsh.Remove(key)
	sig := sketch.NewMinHash(a.lsh.SignatureLen(), newVals)
	a.sigs[key] = sig
	a.sets[key] = newSet
	a.keyed[key] = c.IsCandidateKey(0.9)
	if err := a.lsh.Add(key, sig); err != nil {
		return false, err
	}
	for _, cand := range a.lsh.Query(sig, a.MinJaccard, key) {
		ctbl, ccol, err := splitKey(cand.Key)
		if err != nil {
			return false, err
		}
		cref := metamodel.ColumnRef{Table: ctbl, Column: ccol}
		a.ekg.Relate(ref, cref, "content", cand.Jaccard)
		a.maybePKFK(key, cand.Key, ref, cref)
	}
	a.relateByName(key, ref)
	return true, nil
}

// RelatedTables implements Discoverer via the EKG's table-level query.
func (a *Aurum) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	res := a.ekg.TablesRelated(query.Name, 0)
	if k > 0 && len(res) > k {
		res = res[:k]
	}
	return res
}

// JoinableColumns implements JoinSearcher using content and pkfk edges.
func (a *Aurum) JoinableColumns(query *table.Table, column string, k int) ([]ColumnMatch, error) {
	if _, err := query.Column(column); err != nil {
		return nil, err
	}
	ref := metamodel.ColumnRef{Table: query.Name, Column: column}
	var out []ColumnMatch
	seen := map[metamodel.ColumnRef]bool{}
	for _, label := range []string{"pkfk", "content"} {
		for _, e := range a.ekg.Neighbors(ref, label, 0) {
			o := metamodel.Other(e, ref)
			if seen[o] {
				continue
			}
			seen[o] = true
			out = append(out, ColumnMatch{Ref: o, Score: e.Weight})
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}
