package discovery

import (
	"testing"

	"golake/internal/metamodel"
	"golake/internal/table"
	"golake/internal/workload"
)

// testCorpus is a small corpus shared by the discovery tests: 12 tables
// in 3 groups of 4; within a group tables are joinable and unionable.
func testCorpus(t *testing.T) *workload.Corpus {
	t.Helper()
	return workload.GenerateCorpus(workload.CorpusSpec{
		NumTables:    12,
		JoinGroups:   3,
		RowsPerTable: 80,
		ExtraCols:    1,
		KeyVocab:     120,
		KeySample:    70,
		NoiseRate:    0.01,
		Seed:         21,
	})
}

// evalDiscoverer indexes the corpus and measures top-k quality against
// the joinable ground truth.
func evalDiscoverer(t *testing.T, d Discoverer, c *workload.Corpus, k int) (p, r float64) {
	t.Helper()
	if err := d.Index(c.Tables); err != nil {
		t.Fatalf("%s Index: %v", d.Name(), err)
	}
	results := map[string][]string{}
	var queries []string
	for _, tbl := range c.Tables {
		queries = append(queries, tbl.Name)
		var names []string
		for _, ts := range d.RelatedTables(tbl, k) {
			names = append(names, ts.Table)
		}
		results[tbl.Name] = names
	}
	rel := func(q, cand string) bool { return c.Joinable[workload.NewPair(q, cand)] }
	tot := func(q string) int {
		n := 0
		for p := range c.Joinable {
			if p.A == q || p.B == q {
				n++
			}
		}
		return n
	}
	return workload.TopKQuality(queries, results, k, rel, tot)
}

func TestJOSIERecoversGroundTruth(t *testing.T) {
	c := testCorpus(t)
	p, r := evalDiscoverer(t, NewJOSIE(), c, 3)
	if p < 0.95 || r < 0.95 {
		t.Errorf("JOSIE P@3/R@3 = %.2f/%.2f, want >= 0.95", p, r)
	}
}

func TestAurumRecoversGroundTruth(t *testing.T) {
	c := testCorpus(t)
	p, r := evalDiscoverer(t, NewAurum(), c, 3)
	if p < 0.9 || r < 0.9 {
		t.Errorf("Aurum P@3/R@3 = %.2f/%.2f, want >= 0.9", p, r)
	}
}

func TestD3LRecoversGroundTruth(t *testing.T) {
	c := testCorpus(t)
	p, r := evalDiscoverer(t, NewD3L(), c, 3)
	if p < 0.9 || r < 0.9 {
		t.Errorf("D3L P@3/R@3 = %.2f/%.2f, want >= 0.9", p, r)
	}
}

func TestPEXESORecoversGroundTruth(t *testing.T) {
	c := testCorpus(t)
	p, r := evalDiscoverer(t, NewPEXESO(), c, 3)
	if p < 0.85 || r < 0.85 {
		t.Errorf("PEXESO P@3/R@3 = %.2f/%.2f, want >= 0.85", p, r)
	}
}

func TestJuneauRecoversGroundTruth(t *testing.T) {
	c := testCorpus(t)
	p, r := evalDiscoverer(t, NewJuneau(TaskAugment), c, 3)
	if p < 0.9 || r < 0.9 {
		t.Errorf("Juneau P@3/R@3 = %.2f/%.2f, want >= 0.9", p, r)
	}
}

func TestDLNRecoversGroundTruthAfterTraining(t *testing.T) {
	c := testCorpus(t)
	d := NewDLN()
	if err := d.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	n := d.Train(workload.JoinQueryLog(c, 0, 3))
	if n == 0 {
		t.Fatal("no training examples")
	}
	results := map[string][]string{}
	var queries []string
	for _, tbl := range c.Tables {
		queries = append(queries, tbl.Name)
		var names []string
		for _, ts := range d.RelatedTables(tbl, 3) {
			names = append(names, ts.Table)
		}
		results[tbl.Name] = names
	}
	rel := func(q, cand string) bool { return c.Joinable[workload.NewPair(q, cand)] }
	tot := func(q string) int { return 3 }
	p, r := workload.TopKQuality(queries, results, 3, rel, tot)
	if p < 0.8 || r < 0.8 {
		t.Errorf("DLN P@3/R@3 = %.2f/%.2f, want >= 0.8", p, r)
	}
}

func TestJOSIEJoinableColumnsExact(t *testing.T) {
	a, _ := table.ParseCSV("a", "k,v\nx,1\ny,2\nz,3\n")
	b, _ := table.ParseCSV("b", "kk,w\nx,9\ny,8\nq,7\n")
	cc, _ := table.ParseCSV("c", "kkk\nq\nr\ns\n")
	j := NewJOSIE()
	if err := j.Index([]*table.Table{a, b, cc}); err != nil {
		t.Fatal(err)
	}
	got, err := j.JoinableColumns(a, "k", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].Ref.Table != "b" || got[0].Ref.Column != "kk" {
		t.Fatalf("JoinableColumns = %+v", got)
	}
	if got[0].Score != 2 {
		t.Errorf("overlap = %v, want 2 (exact)", got[0].Score)
	}
	if _, err := j.JoinableColumns(a, "ghost", 2); err == nil {
		t.Error("unknown column should error")
	}
}

func TestAurumPKFKDetection(t *testing.T) {
	users, _ := table.ParseCSV("users", "user_id,city\nu1,berlin\nu2,paris\nu3,rome\nu4,lyon\n")
	orders, _ := table.ParseCSV("orders", "oid,user_id\no1,u1\no2,u1\no3,u2\no4,u3\n")
	a := NewAurum()
	a.MinJaccard = 0.3
	if err := a.Index([]*table.Table{users, orders}); err != nil {
		t.Fatal(err)
	}
	ref := metamodel.ColumnRef{Table: "users", Column: "user_id"}
	pkfk := a.EKG().Neighbors(ref, "pkfk", 0)
	if len(pkfk) == 0 {
		t.Fatal("no pkfk edge detected")
	}
	other := metamodel.Other(pkfk[0], ref)
	if other.Table != "orders" || other.Column != "user_id" {
		t.Errorf("pkfk partner = %v", other)
	}
}

func TestAurumIncrementalUpdateThreshold(t *testing.T) {
	t1, _ := table.ParseCSV("t1", "k\na\nb\nc\nd\ne\nf\ng\nh\ni\nj\n")
	a := NewAurum()
	if err := a.Index([]*table.Table{t1}); err != nil {
		t.Fatal(err)
	}
	// Small drift: one value changes -> below threshold, no re-index.
	small := &table.Column{Name: "k", Cells: []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "zz"}}
	changed, err := a.Update("t1", small)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("small drift should not trigger re-index")
	}
	// Large drift: all values change.
	big := &table.Column{Name: "k", Cells: []string{"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10"}}
	changed, err = a.Update("t1", big)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("large drift should trigger re-index")
	}
}

func TestAurumNameEdges(t *testing.T) {
	a1, _ := table.ParseCSV("a1", "customer_name,x\nfoo,1\nbar,2\n")
	a2, _ := table.ParseCSV("a2", "customer_name,y\nzzz,3\nqqq,4\n")
	a := NewAurum()
	if err := a.Index([]*table.Table{a1, a2}); err != nil {
		t.Fatal(err)
	}
	ref := metamodel.ColumnRef{Table: "a1", Column: "customer_name"}
	nbs := a.EKG().Neighbors(ref, "name", 0)
	if len(nbs) == 0 {
		t.Fatal("identical column names should create a name edge")
	}
	if got := metamodel.Other(nbs[0], ref); got.Table != "a2" {
		t.Errorf("name neighbor = %v", got)
	}
}

func TestD3LTrainingImprovesOrKeepsQuality(t *testing.T) {
	c := testCorpus(t)
	d := NewD3L()
	if err := d.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	// Build labeled pairs from ground truth: positive key-column pairs,
	// negative cross-group pairs.
	var pairs []LabeledPair
	names := c.TableNames()
	for i := 0; i < len(names); i++ {
		for jj := i + 1; jj < len(names); jj++ {
			a, b := names[i], names[jj]
			pairs = append(pairs, LabeledPair{
				A:       metamodel.ColumnRef{Table: a, Column: c.KeyColumn[a]},
				B:       metamodel.ColumnRef{Table: b, Column: c.KeyColumn[b]},
				Related: c.Joinable[workload.NewPair(a, b)],
			})
		}
	}
	n := d.Train(pairs, 40, 0.3)
	if n != len(pairs) {
		t.Fatalf("trained on %d pairs, want %d", n, len(pairs))
	}
	// Weights should have moved away from uniform.
	uniform := true
	for _, w := range d.Weights {
		if w != 1 {
			uniform = false
		}
	}
	if uniform {
		t.Error("training left weights uniform")
	}
	p, r := evalDiscovererNoIndex(t, d, c, 3)
	if p < 0.85 || r < 0.85 {
		t.Errorf("trained D3L P@3/R@3 = %.2f/%.2f", p, r)
	}
}

func evalDiscovererNoIndex(t *testing.T, d Discoverer, c *workload.Corpus, k int) (p, r float64) {
	t.Helper()
	results := map[string][]string{}
	var queries []string
	for _, tbl := range c.Tables {
		queries = append(queries, tbl.Name)
		var names []string
		for _, ts := range d.RelatedTables(tbl, k) {
			names = append(names, ts.Table)
		}
		results[tbl.Name] = names
	}
	rel := func(q, cand string) bool { return c.Joinable[workload.NewPair(q, cand)] }
	tot := func(q string) int {
		n := 0
		for pr := range c.Joinable {
			if pr.A == q || pr.B == q {
				n++
			}
		}
		return n
	}
	return workload.TopKQuality(queries, results, k, rel, tot)
}

func TestJuneauTaskWeighting(t *testing.T) {
	// Query table with nulls; candidate clean twin vs unrelated table.
	q, _ := table.ParseCSV("q", "k,v\na,1\nb,\nc,\n")
	clean, _ := table.ParseCSV("clean", "k,v\na,1\nb,2\nc,3\n")
	other, _ := table.ParseCSV("other", "zz,qq\nfoo,9\nbar,8\n")
	j := NewJuneau(TaskClean)
	if err := j.Index([]*table.Table{q, clean, other}); err != nil {
		t.Fatal(err)
	}
	got := j.RelatedTables(q, 2)
	if len(got) == 0 || got[0].Table != "clean" {
		t.Fatalf("TaskClean ranking = %+v", got)
	}
}

func TestJuneauProvenanceSignal(t *testing.T) {
	q, _ := table.ParseCSV("q", "a\n1\n2\n")
	x, _ := table.ParseCSV("x", "b\n7\n8\n")
	y, _ := table.ParseCSV("y", "c\n9\n10\n")
	j := NewJuneau(TaskClean)
	j.ProvenanceSim = func(a, b string) float64 {
		if (a == "q" && b == "x") || (a == "x" && b == "q") {
			return 1
		}
		return 0
	}
	if err := j.Index([]*table.Table{q, x, y}); err != nil {
		t.Fatal(err)
	}
	got := j.RelatedTables(q, 2)
	if len(got) == 0 || got[0].Table != "x" {
		t.Fatalf("provenance-boosted ranking = %+v", got)
	}
}

func TestDLNMetadataVsEnsemble(t *testing.T) {
	c := testCorpus(t)
	d := NewDLN()
	if err := d.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	d.Train(workload.JoinQueryLog(c, 0, 3))
	// A ground-truth joinable key pair should score high on both
	// classifiers; an unrelated extra-column pair should score lower on
	// the ensemble.
	names := c.TableNames()
	var a, b string
	for p := range c.Joinable {
		a, b = p.A, p.B
		break
	}
	pos := d.RelatedProbability(
		metamodel.ColumnRef{Table: a, Column: c.KeyColumn[a]},
		metamodel.ColumnRef{Table: b, Column: c.KeyColumn[b]})
	var negA, negB string
	for _, n1 := range names {
		for _, n2 := range names {
			if n1 != n2 && !c.Joinable[workload.NewPair(n1, n2)] {
				negA, negB = n1, n2
			}
		}
	}
	neg := d.RelatedProbability(
		metamodel.ColumnRef{Table: negA, Column: c.KeyColumn[negA]},
		metamodel.ColumnRef{Table: negB, Column: c.KeyColumn[negB]})
	if pos <= neg {
		t.Errorf("positive pair prob %.3f <= negative pair prob %.3f", pos, neg)
	}
	if pos < 0.5 {
		t.Errorf("positive pair prob = %.3f, want >= 0.5", pos)
	}
	if got := d.MetadataOnlyProbability(
		metamodel.ColumnRef{Table: a, Column: c.KeyColumn[a]},
		metamodel.ColumnRef{Table: b, Column: c.KeyColumn[b]}); got < 0.5 {
		t.Errorf("metadata-only positive prob = %.3f", got)
	}
}

func TestDLNUntrainedReturnsNothing(t *testing.T) {
	c := testCorpus(t)
	d := NewDLN()
	_ = d.Index(c.Tables)
	if got := d.RelatedTables(c.Tables[0], 3); got != nil {
		t.Errorf("untrained DLN returned %v", got)
	}
}

func TestSplitKey(t *testing.T) {
	tbl, col, err := splitKey("my.table.column")
	if err != nil || tbl != "my.table" || col != "column" {
		t.Errorf("splitKey = %q/%q/%v", tbl, col, err)
	}
	if _, _, err := splitKey("nodot"); err == nil {
		t.Error("malformed key should error")
	}
}

func TestPEXESOSemanticMatch(t *testing.T) {
	// Two columns with disjoint values drawn from the same vocabulary
	// context should still be joinable semantically after exact-match
	// columns establish co-occurrence.
	a, _ := table.ParseCSV("a", "color\nred\ngreen\nblue\n")
	b, _ := table.ParseCSV("b", "colour\nred\ngreen\nblue\n")
	cc, _ := table.ParseCSV("c", "city\nberlin\nparis\nrome\n")
	p := NewPEXESO()
	if err := p.Index([]*table.Table{a, b, cc}); err != nil {
		t.Fatal(err)
	}
	got := p.RelatedTables(a, 2)
	if len(got) == 0 || got[0].Table != "b" {
		t.Fatalf("PEXESO ranking = %+v", got)
	}
	cols, err := p.JoinableColumns(a, "color", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) == 0 || cols[0].Ref.Table != "b" {
		t.Errorf("JoinableColumns = %+v", cols)
	}
}

// Property: PEXESO's grid-pruned joinability equals brute-force
// joinability (the grid is an optimization, never a semantics change).
func TestPEXESOGridMatchesBruteForce(t *testing.T) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 6, JoinGroups: 2, RowsPerTable: 40,
		ExtraCols: 0, KeyVocab: 60, KeySample: 40, Seed: 61,
	})
	p := NewPEXESO()
	if err := p.Index(c.Tables); err != nil {
		t.Fatal(err)
	}
	// Brute force: same model, no grid (neighborhood = all cells).
	brute := func(q, cand *pexColumn) float64 {
		if len(q.vectors) == 0 {
			return 0
		}
		matched := 0
		for i, v := range q.values {
			if _, ok := cand.exact[v]; ok {
				matched++
				continue
			}
			found := false
			for _, cv := range cand.vectors {
				if cosine(q.vectors[i], cv) >= p.Tau {
					found = true
					break
				}
			}
			if found {
				matched++
			}
		}
		return float64(matched) / float64(len(q.values))
	}
	keys := make([]string, 0, len(p.columns))
	for k := range p.columns {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := 0; j < len(keys); j++ {
			if i == j {
				continue
			}
			a, b := p.columns[keys[i]], p.columns[keys[j]]
			g := p.Joinability(a, b)
			bf := brute(a, b)
			// The grid prunes by adjacency: it may miss matches landing
			// in far cells (cosine close but different early dims), so
			// grid <= brute; exact-value matches guarantee equality for
			// identical columns.
			if g > bf+1e-9 {
				t.Fatalf("grid joinability %v > brute force %v for %s/%s", g, bf, keys[i], keys[j])
			}
		}
	}
}
