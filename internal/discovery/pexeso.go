package discovery

import (
	"math"
	"sort"

	"golake/internal/embed"
	"golake/internal/metamodel"
	"golake/internal/table"
)

// PEXESO implements semantically joinable table discovery over textual
// attributes (Dong et al., Sec. 6.2.3): values are embedded as
// high-dimensional vectors; two columns are semantically joinable when
// a large fraction of the query column's vectors have a match within a
// distance threshold in the candidate column. Exact-match lookups are
// served by an inverted map, and a hierarchical grid over the first
// vector dimensions prunes candidate vectors before the expensive
// similarity computation — the paper's pivot/grid pruning in spirit.
type PEXESO struct {
	// Tau is the per-value cosine-similarity threshold for a match.
	Tau float64
	// JoinabilityThreshold is the fraction of query values that must
	// match for a column to count as joinable.
	JoinabilityThreshold float64
	// GridCells is the number of cells per grid dimension.
	GridCells int

	model   *embed.Model
	columns map[string]*pexColumn
	tables  map[string][]string
}

type pexColumn struct {
	key string
	// values[i] embeds to vectors[i]; exact is the same distinct value
	// set as a lookup map for the exact-match short-circuit.
	values  []string
	vectors [][]float64
	exact   map[string]struct{}
	// grid buckets vector indices by their cell to prune comparisons.
	grid map[[2]int][]int
}

// NewPEXESO creates an instance with the paper-spirit defaults.
func NewPEXESO() *PEXESO {
	return &PEXESO{
		Tau:                  0.9,
		JoinabilityThreshold: 0.5,
		GridCells:            8,
		model:                embed.NewModel(32),
		columns:              map[string]*pexColumn{},
		tables:               map[string][]string{},
	}
}

// Name implements Discoverer.
func (p *PEXESO) Name() string { return "PEXESO" }

// Index implements Discoverer: embed every textual column's distinct
// values and bucket them into the grid.
func (p *PEXESO) Index(tables []*table.Table) error {
	for _, t := range tables {
		for _, c := range t.Columns {
			if c.Kind.Numeric() {
				continue // PEXESO targets textual attributes
			}
			p.model.AddColumn(textualValues(c, 200))
		}
	}
	for _, t := range tables {
		for _, c := range t.Columns {
			if c.Kind.Numeric() {
				continue
			}
			pc := p.embedColumn(t.Name, c)
			p.columns[pc.key] = pc
			p.tables[t.Name] = append(p.tables[t.Name], pc.key)
		}
	}
	return nil
}

func (p *PEXESO) embedColumn(tableName string, c *table.Column) *pexColumn {
	vals := textualValues(c, 300)
	pc := &pexColumn{
		key:   columnKey(tableName, c.Name),
		exact: map[string]struct{}{},
		grid:  map[[2]int][]int{},
	}
	for _, v := range vals {
		pc.exact[v] = struct{}{}
		vec := p.model.Vector(v)
		idx := len(pc.vectors)
		pc.values = append(pc.values, v)
		pc.vectors = append(pc.vectors, vec)
		pc.grid[p.cell(vec)] = append(pc.grid[p.cell(vec)], idx)
	}
	return pc
}

// cell maps a vector to its grid cell over the first two dimensions
// (vectors are unit-norm, so coordinates lie in [-1,1]).
func (p *PEXESO) cell(v []float64) [2]int {
	var out [2]int
	for d := 0; d < 2 && d < len(v); d++ {
		x := (v[d] + 1) / 2 * float64(p.GridCells)
		i := int(x)
		if i >= p.GridCells {
			i = p.GridCells - 1
		}
		if i < 0 {
			i = 0
		}
		out[d] = i
	}
	return out
}

// neighborsOfCell yields the 3x3 cell neighborhood (cosine-close unit
// vectors land in adjacent cells).
func (p *PEXESO) neighborsOfCell(c [2]int) [][2]int {
	var out [][2]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			x, y := c[0]+dx, c[1]+dy
			if x < 0 || y < 0 || x >= p.GridCells || y >= p.GridCells {
				continue
			}
			out = append(out, [2]int{x, y})
		}
	}
	return out
}

// Joinability computes the fraction of the query column's values that
// have a semantic match in the candidate column.
func (p *PEXESO) Joinability(q, cand *pexColumn) float64 {
	if len(q.vectors) == 0 {
		return 0
	}
	matched := 0
	for i, v := range q.values {
		// Exact value match short-circuits the vector search.
		if _, ok := cand.exact[v]; ok {
			matched++
			continue
		}
		if p.hasVectorMatch(q.vectors[i], cand) {
			matched++
		}
	}
	return float64(matched) / float64(len(q.values))
}

func (p *PEXESO) hasVectorMatch(vec []float64, cand *pexColumn) bool {
	for _, cell := range p.neighborsOfCell(p.cell(vec)) {
		for _, idx := range cand.grid[cell] {
			if cosine(vec, cand.vectors[idx]) >= p.Tau {
				return true
			}
		}
	}
	return false
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// RelatedTables implements Discoverer: a table's score is the best
// joinability between any query column and any of its columns.
func (p *PEXESO) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	best := map[string]float64{}
	for _, c := range query.Columns {
		if c.Kind.Numeric() {
			continue
		}
		qp, ok := p.columns[columnKey(query.Name, c.Name)]
		if !ok {
			qp = p.embedColumn(query.Name, c)
		}
		for tbl, keys := range p.tables {
			if tbl == query.Name {
				continue
			}
			for _, key := range keys {
				j := p.Joinability(qp, p.columns[key])
				if j >= p.JoinabilityThreshold && j > best[tbl] {
					best[tbl] = j
				}
			}
		}
	}
	return rankTables(best, k)
}

// JoinableColumns implements JoinSearcher with joinability scores.
func (p *PEXESO) JoinableColumns(query *table.Table, column string, k int) ([]ColumnMatch, error) {
	c, err := query.Column(column)
	if err != nil {
		return nil, err
	}
	qp, ok := p.columns[columnKey(query.Name, column)]
	if !ok {
		qp = p.embedColumn(query.Name, c)
	}
	var out []ColumnMatch
	for tbl, keys := range p.tables {
		if tbl == query.Name {
			continue
		}
		for _, key := range keys {
			j := p.Joinability(qp, p.columns[key])
			if j < p.JoinabilityThreshold {
				continue
			}
			_, col, err := splitKey(key)
			if err != nil {
				continue
			}
			out = append(out, ColumnMatch{Ref: metamodel.ColumnRef{Table: tbl, Column: col}, Score: j})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Ref.String() < out[j].Ref.String()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}
