// Package discovery implements the related-dataset-discovery function
// of the maintenance tier (Sec. 6.2 of the survey) with one
// implementation per system family of Table 3:
//
//   - JOSIE: exact top-k overlap set similarity over an inverted index
//   - Aurum: LSH-signature profiling into an enterprise knowledge graph
//   - D3L: five relatedness features combined in a weighted Euclidean
//     space, with weights trainable from labeled pairs
//   - PEXESO: semantic joinability of textual columns via
//     high-dimensional vectors with grid pruning
//   - Juneau: multi-signal task-specific relatedness for data science
//   - DLN: scalable feature classifiers trained from join query logs
//
// All implementations satisfy the Discoverer interface, which is what
// the Table 3 benchmark sweeps over.
package discovery

import (
	"golake/internal/metamodel"
	"golake/internal/table"
)

// Discoverer is the common contract of related-dataset-discovery
// systems: build an index over a corpus once, answer ranked
// related-table queries many times.
type Discoverer interface {
	// Name identifies the system (for reports).
	Name() string
	// Index builds the discovery index over the corpus.
	Index(tables []*table.Table) error
	// RelatedTables returns the top-k tables most related to the query
	// table, excluding the query itself, ranked by descending score.
	RelatedTables(query *table.Table, k int) []metamodel.TableScore
}

// ColumnMatch is a ranked joinable-column result.
type ColumnMatch struct {
	Ref   metamodel.ColumnRef
	Score float64
}

// JoinSearcher is implemented by systems that answer column-level
// joinability queries (exploration mode 1 of Sec. 7.1).
type JoinSearcher interface {
	// JoinableColumns returns the top-k columns joinable with the given
	// column of the query table.
	JoinableColumns(query *table.Table, column string, k int) ([]ColumnMatch, error)
}

// columnKey renders the canonical "table.column" identifier.
func columnKey(t, c string) string { return t + "." + c }

// textualValues returns the distinct non-null values of a column,
// capped at limit to bound index cost (0 = no cap).
func textualValues(c *table.Column, limit int) []string {
	vals := c.DistinctSlice()
	if limit > 0 && len(vals) > limit {
		vals = vals[:limit]
	}
	return vals
}
