package discovery

import (
	"math"
	"math/rand"
	"sort"

	"golake/internal/metamodel"
	"golake/internal/sketch"
	"golake/internal/table"
)

// DLN implements the Data Lake Navigator approach (Bharadwaj et al.,
// Sec. 6.2.4): relatedness at enterprise scale is learned, not
// computed — classifiers are trained on column pairs labeled from the
// JOIN clauses of historical queries (positives) and random never-joined
// pairs (negatives). Two classifiers mirror the paper: a metadata-only
// model (usable when reading data is too expensive), and an ensemble
// that adds data-sample features for textual columns.
type DLN struct {
	// SampleSize caps the number of distinct values sampled per column
	// for data features (DLN cannot scan exabyte columns).
	SampleSize int
	// Seed drives negative sampling.
	Seed int64

	profiles map[string]*dlnProfile
	tables   map[string][]string
	metaW    []float64 // metadata-only model weights (incl. bias at 0)
	fullW    []float64 // ensemble model weights
	trained  bool
}

type dlnProfile struct {
	key        string
	nameGrams  map[string]struct{}
	uniqueness float64
	isNumeric  bool
	sample     map[string]struct{}
}

// NewDLN creates an untrained instance.
func NewDLN() *DLN {
	return &DLN{
		SampleSize: 64,
		Seed:       1,
		profiles:   map[string]*dlnProfile{},
		tables:     map[string][]string{},
	}
}

// Name implements Discoverer.
func (d *DLN) Name() string { return "DLN" }

// Index implements Discoverer: lightweight per-column profiles only —
// the heavy lifting happens in training.
func (d *DLN) Index(tables []*table.Table) error {
	for _, t := range tables {
		for _, c := range t.Columns {
			p := &dlnProfile{
				key:       columnKey(t.Name, c.Name),
				nameGrams: sketch.ToSet(sketch.QGrams(c.Name, 3)),
				isNumeric: c.Kind.Numeric(),
				sample:    sketch.ToSet(textualValues(c, d.SampleSize)),
			}
			prof := table.Profile(c)
			p.uniqueness = prof.Uniqueness
			d.profiles[p.key] = p
			d.tables[t.Name] = append(d.tables[t.Name], p.key)
		}
	}
	return nil
}

// metaFeatures are the metadata-only features of a column pair.
func metaFeatures(a, b *dlnProfile) []float64 {
	typeMatch := 0.0
	if a.isNumeric == b.isNumeric {
		typeMatch = 1
	}
	return []float64{
		1, // bias
		sketch.ExactJaccard(a.nameGrams, b.nameGrams),
		1 - math.Abs(a.uniqueness-b.uniqueness),
		typeMatch,
	}
}

// fullFeatures add data-sample overlap for textual pairs (numeric pairs
// keep metadata only, per the paper's ensemble design).
func fullFeatures(a, b *dlnProfile) []float64 {
	f := metaFeatures(a, b)
	overlap := 0.0
	if !a.isNumeric && !b.isNumeric {
		overlap = sketch.ExactJaccard(a.sample, b.sample)
	}
	return append(f, overlap)
}

// Train learns both classifiers from a join query log: each entry is a
// pair of "table.column" identifiers that co-occurred in a JOIN clause.
// Negative pairs are sampled from columns never seen joined. Returns
// the number of training examples used.
func (d *DLN) Train(queryLog [][2]string) int {
	rng := rand.New(rand.NewSource(d.Seed))
	type ex struct {
		meta, full []float64
		y          float64
	}
	var data []ex
	positive := map[[2]string]bool{}
	for _, e := range queryLog {
		a, okA := d.profiles[e[0]]
		b, okB := d.profiles[e[1]]
		if !okA || !okB {
			continue
		}
		positive[[2]string{e[0], e[1]}] = true
		positive[[2]string{e[1], e[0]}] = true
		data = append(data, ex{meta: metaFeatures(a, b), full: fullFeatures(a, b), y: 1})
	}
	if len(data) == 0 {
		return 0
	}
	keys := make([]string, 0, len(d.profiles))
	for k := range d.profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Sample as many negatives as positives.
	for n := 0; n < len(positive)/2; {
		a := keys[rng.Intn(len(keys))]
		b := keys[rng.Intn(len(keys))]
		if a == b || positive[[2]string{a, b}] {
			continue
		}
		pa, pb := d.profiles[a], d.profiles[b]
		data = append(data, ex{meta: metaFeatures(pa, pb), full: fullFeatures(pa, pb), y: 0})
		n++
	}
	d.metaW = trainLogistic(len(data[0].meta), 200, 0.5, func(yield func(x []float64, y float64)) {
		for _, e := range data {
			yield(e.meta, e.y)
		}
	})
	d.fullW = trainLogistic(len(data[0].full), 200, 0.5, func(yield func(x []float64, y float64)) {
		for _, e := range data {
			yield(e.full, e.y)
		}
	})
	d.trained = true
	return len(data)
}

// trainLogistic fits weights by gradient descent over a re-playable
// example stream.
func trainLogistic(dim, epochs int, lr float64, each func(yield func(x []float64, y float64))) []float64 {
	w := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		each(func(x []float64, y float64) {
			z := 0.0
			for i := range w {
				z += w[i] * x[i]
			}
			pred := 1 / (1 + math.Exp(-z))
			g := pred - y
			for i := range w {
				w[i] -= lr * g * x[i]
			}
		})
	}
	return w
}

func logisticScore(w, x []float64) float64 {
	z := 0.0
	for i := range w {
		z += w[i] * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// RelatedProbability predicts relatedness of two columns with the
// ensemble model (metadata-only for numeric pairs is already encoded in
// the features).
func (d *DLN) RelatedProbability(a, b metamodel.ColumnRef) float64 {
	pa, okA := d.profiles[columnKey(a.Table, a.Column)]
	pb, okB := d.profiles[columnKey(b.Table, b.Column)]
	if !okA || !okB || !d.trained {
		return 0
	}
	return logisticScore(d.fullW, fullFeatures(pa, pb))
}

// MetadataOnlyProbability predicts with the metadata-only classifier.
func (d *DLN) MetadataOnlyProbability(a, b metamodel.ColumnRef) float64 {
	pa, okA := d.profiles[columnKey(a.Table, a.Column)]
	pb, okB := d.profiles[columnKey(b.Table, b.Column)]
	if !okA || !okB || !d.trained {
		return 0
	}
	return logisticScore(d.metaW, metaFeatures(pa, pb))
}

// RelatedTables implements Discoverer: a table's score is the best
// ensemble probability over column pairs against the query.
func (d *DLN) RelatedTables(query *table.Table, k int) []metamodel.TableScore {
	if !d.trained {
		return nil
	}
	best := map[string]float64{}
	for _, c := range query.Columns {
		qKey := columnKey(query.Name, c.Name)
		qp, ok := d.profiles[qKey]
		if !ok {
			prof := table.Profile(c)
			qp = &dlnProfile{
				key:        qKey,
				nameGrams:  sketch.ToSet(sketch.QGrams(c.Name, 3)),
				uniqueness: prof.Uniqueness,
				isNumeric:  c.Kind.Numeric(),
				sample:     sketch.ToSet(textualValues(c, d.SampleSize)),
			}
		}
		for tbl, keys := range d.tables {
			if tbl == query.Name {
				continue
			}
			for _, key := range keys {
				p := logisticScore(d.fullW, fullFeatures(qp, d.profiles[key]))
				if p > best[tbl] {
					best[tbl] = p
				}
			}
		}
	}
	// Keep only confident predictions.
	for tbl, p := range best {
		if p < 0.5 {
			delete(best, tbl)
		}
	}
	return rankTables(best, k)
}
