package extract

import (
	"strings"
	"testing"

	"golake/internal/sketch"
	"golake/internal/storage/filestore"
	"golake/internal/workload"
)

func TestExtractCSV(t *testing.T) {
	md, err := Extract("raw/orders.csv", []byte("id,total,city\n1,9.5,berlin\n2,3.0,paris\n"))
	if err != nil {
		t.Fatal(err)
	}
	if md.Format != filestore.FormatCSV {
		t.Errorf("format = %v", md.Format)
	}
	if len(md.Schema) != 3 {
		t.Fatalf("schema columns = %d", len(md.Schema))
	}
	if md.Schema[0].Name != "id" || !md.Schema[0].Kind.Numeric() {
		t.Errorf("schema[0] = %+v", md.Schema[0])
	}
	if md.Properties["rows"] != "2" || md.Properties["columns"] != "3" {
		t.Errorf("properties = %v", md.Properties)
	}
	if md.Table == nil || md.Table.Name != "orders" {
		t.Errorf("table = %v", md.Table)
	}
}

func TestExtractJSONTree(t *testing.T) {
	data := []byte(`{"user":{"name":"a","tags":["x","y"]},"active":true}`)
	md, err := Extract("raw/user.json", data)
	if err != nil {
		t.Fatal(err)
	}
	if md.Tree == nil {
		t.Fatal("no tree")
	}
	paths := md.Tree.Paths()
	want := []string{"/$", "/$/active", "/$/user", "/$/user/name", "/$/user/tags", "/$/user/tags/item"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path %d = %q, want %q", i, paths[i], want[i])
		}
	}
	if md.Tree.Depth() != 4 { // $ -> user -> tags -> item
		t.Errorf("depth = %d, want 4", md.Tree.Depth())
	}
}

func TestJSONLTreeMergesLineStructures(t *testing.T) {
	data := []byte("{\"a\":1}\n{\"a\":2,\"b\":\"x\"}\n")
	tree, err := JSONLTree(data)
	if err != nil {
		t.Fatal(err)
	}
	// One merged "item" child with fields a and b.
	if len(tree.Children) != 1 {
		t.Fatalf("children = %d", len(tree.Children))
	}
	item := tree.Children[0]
	if len(item.Children) != 2 {
		t.Errorf("item fields = %d, want 2 (merged)", len(item.Children))
	}
}

func TestXMLTree(t *testing.T) {
	data := []byte(`<catalog><book><title/><author/></book><book><title/></book></catalog>`)
	tree, err := XMLTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Name != "catalog" {
		t.Errorf("root = %q", tree.Name)
	}
	// The two <book> elements merge into one structural child.
	if len(tree.Children) != 1 || tree.Children[0].Name != "book" {
		t.Fatalf("children = %+v", tree.Children)
	}
	if len(tree.Children[0].Children) != 2 {
		t.Errorf("book fields = %d, want 2", len(tree.Children[0].Children))
	}
	if _, err := XMLTree([]byte("")); err == nil {
		t.Error("empty xml should error")
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract("bad.csv", []byte("a,b\n1\n")); err == nil {
		t.Error("ragged csv should error")
	}
	if _, err := Extract("bad.json", []byte("{nope")); err == nil {
		t.Error("bad json should error")
	}
}

func TestDatamaranRecoversTemplates(t *testing.T) {
	gl := workload.GenerateLog(workload.LogSpec{Templates: 4, Records: 300, NoiseRate: 0.05, Seed: 3})
	got := Datamaran(gl.Content, DefaultDatamaranConfig())
	if len(got) == 0 {
		t.Fatal("no templates extracted")
	}
	// Ground truth: generalized pattern sequences of each skeleton,
	// realized from the actual log lines. Build them by generalizing
	// the first record of each template ID.
	truth := truthPatterns(gl)
	rec := TemplateRecovery(got, truth)
	if rec < 0.75 {
		t.Errorf("template recovery = %.2f, want >= 0.75 (extracted %d templates)", rec, len(got))
	}
	// Coverage sanity: total coverage cannot exceed 1.
	var total float64
	for _, tpl := range got {
		total += tpl.Coverage
		if tpl.Records <= 0 {
			t.Errorf("template with zero records: %+v", tpl)
		}
	}
	if total > 1.0001 {
		t.Errorf("total coverage = %v > 1", total)
	}
}

// truthPatterns reconstructs the expected generalized pattern sequences
// by rendering each template once and generalizing.
func truthPatterns(gl *workload.GeneratedLog) [][]string {
	lines := strings.Split(strings.TrimRight(gl.Content, "\n"), "\n")
	var truth [][]string
	seen := map[int]bool{}
	li := 0
	for _, tid := range gl.RecordTemplates {
		tpl := gl.Templates[tid]
		if !seen[tid] {
			var pats []string
			for j := range tpl.Lines {
				pats = append(pats, sketch.RegexPattern(lines[li+j]))
			}
			truth = append(truth, pats)
			seen[tid] = true
		}
		li += len(tpl.Lines)
		// Skip a potential noise line.
		for li < len(lines) && strings.HasPrefix(lines[li], "# noise") {
			li++
		}
	}
	return truth
}

func TestDatamaranEmptyAndNoise(t *testing.T) {
	if got := Datamaran("", DefaultDatamaranConfig()); got != nil {
		t.Errorf("empty input = %v", got)
	}
	// Pure noise with no repeating structure: high threshold filters all.
	noise := "aaa bbb\n123-456\nzzz qqq 42\n"
	got := Datamaran(noise, DatamaranConfig{MaxRecordSpan: 2, CoverageThreshold: 0.9})
	if len(got) != 0 {
		t.Errorf("noise extraction = %+v", got)
	}
}

func TestDatamaranSingleTemplate(t *testing.T) {
	log := strings.Repeat("INFO user=alice action=login code=42\n", 50)
	got := Datamaran(log, DefaultDatamaranConfig())
	if len(got) != 1 {
		t.Fatalf("templates = %d, want 1", len(got))
	}
	if got[0].Coverage < 0.99 {
		t.Errorf("coverage = %v, want ~1", got[0].Coverage)
	}
	if got[0].Records != 50 {
		t.Errorf("records = %d, want 50", got[0].Records)
	}
}

func TestTemplateRecoveryEdge(t *testing.T) {
	if got := TemplateRecovery(nil, nil); got != 0 {
		t.Errorf("empty recovery = %v", got)
	}
}

func TestSklumaCSV(t *testing.T) {
	data := []byte("city,population,note\nberlin,3600000,capital city\nparis,2100000,capital city\nlyon,500000,\n")
	md, err := Skluma("data/cities.csv", data)
	if err != nil {
		t.Fatal(err)
	}
	if md.Name != "cities.csv" || md.Extension != "csv" {
		t.Errorf("context = %+v", md)
	}
	agg, ok := md.NumericSummary["population"]
	if !ok {
		t.Fatal("population aggregate missing")
	}
	if agg.Min != 500000 || agg.Max != 3600000 {
		t.Errorf("aggregate = %+v", agg)
	}
	if md.NullFraction <= 0 {
		t.Errorf("null fraction = %v, want > 0", md.NullFraction)
	}
	// "capital" and "city" should be leading keywords.
	if len(md.Keywords) == 0 {
		t.Fatal("no keywords")
	}
	found := false
	for _, kw := range md.Keywords {
		if kw.Term == "capital" || kw.Term == "city" {
			found = true
		}
	}
	if !found {
		t.Errorf("keywords = %+v", md.Keywords)
	}
}

func TestSklumaText(t *testing.T) {
	md, err := Skluma("notes.txt", []byte("sensor telemetry sensor readings from the sensor array"))
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Keywords) == 0 || md.Keywords[0].Term != "sensor" {
		t.Errorf("keywords = %+v", md.Keywords)
	}
	if md.TopicHint != "sensor" {
		t.Errorf("topic = %q", md.TopicHint)
	}
}

func TestSklumaStopwordsAndNumbers(t *testing.T) {
	md, err := Skluma("t.txt", []byte("the and 12345 for with"))
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Keywords) != 0 {
		t.Errorf("keywords = %+v, want none", md.Keywords)
	}
	if md.TopicHint != "unknown" {
		t.Errorf("topic = %q", md.TopicHint)
	}
}
