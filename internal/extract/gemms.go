// Package extract implements the ingestion-tier metadata extraction
// function of the survey (Sec. 5.1) with one representative per system
// family: GEMMS-style format detection plus structural metadata parsing
// (tables for CSV, trees for JSON/XML), DATAMARAN-style unsupervised
// structure-template extraction from multi-line log files, and
// Skluma-style content/context profiling.
package extract

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"golake/internal/storage/filestore"
	"golake/internal/table"
)

// TreeNode is one node of the structural metadata tree GEMMS infers
// from semi-structured files: JSON objects/arrays or XML elements.
type TreeNode struct {
	Name     string
	Kind     string // "object", "array", "value", "element"
	Children []*TreeNode
}

// Depth returns the height of the tree rooted at n.
func (n *TreeNode) Depth() int {
	if len(n.Children) == 0 {
		return 1
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// CountNodes returns the total number of nodes in the tree.
func (n *TreeNode) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Paths returns all root-to-node paths as slash-joined names, sorted.
// These are the "structural metadata" GEMMS stores for querying.
func (n *TreeNode) Paths() []string {
	var out []string
	var walk func(node *TreeNode, prefix string)
	walk = func(node *TreeNode, prefix string) {
		p := prefix + "/" + node.Name
		out = append(out, p)
		for _, c := range node.Children {
			walk(c, p)
		}
	}
	walk(n, "")
	sort.Strings(out)
	return out
}

// Metadata is the extraction result for one ingested object, mirroring
// the GEMMS metamodel's separation of structure, properties and
// semantics.
type Metadata struct {
	Path   string
	Format filestore.Format
	// Properties are key-value metadata (file size, header fields, ...).
	Properties map[string]string
	// Schema is set for tabular formats.
	Schema []table.ColumnProfile
	// Tree is set for hierarchical formats.
	Tree *TreeNode
	// Table is the parsed table for tabular formats (callers may drop
	// it after registering the dataset).
	Table *table.Table
	// SemanticTags are ontology-term annotations; extraction leaves
	// them empty, enrichment fills them in later (Sec. 6.4).
	SemanticTags []string
}

// Extract runs GEMMS-style extraction: detect the format, then dispatch
// the matching parser.
func Extract(path string, data []byte) (*Metadata, error) {
	format := filestore.Detect(path, data)
	md := &Metadata{
		Path:   path,
		Format: format,
		Properties: map[string]string{
			"size":   fmt.Sprintf("%d", len(data)),
			"format": string(format),
		},
	}
	switch format {
	case filestore.FormatCSV:
		t, err := table.ReadCSV(baseName(path), bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("extract: %s: %w", path, err)
		}
		prof := table.ProfileTable(t)
		md.Schema = prof.Columns
		md.Table = t
		md.Properties["rows"] = fmt.Sprintf("%d", t.NumRows())
		md.Properties["columns"] = fmt.Sprintf("%d", t.NumCols())
		md.Properties["header"] = strings.Join(t.ColumnNames(), ",")
	case filestore.FormatJSON:
		tree, err := JSONTree(data)
		if err != nil {
			return nil, fmt.Errorf("extract: %s: %w", path, err)
		}
		md.Tree = tree
		md.Properties["depth"] = fmt.Sprintf("%d", tree.Depth())
		md.Properties["nodes"] = fmt.Sprintf("%d", tree.CountNodes())
	case filestore.FormatJSONL:
		tree, err := JSONLTree(data)
		if err != nil {
			return nil, fmt.Errorf("extract: %s: %w", path, err)
		}
		md.Tree = tree
		md.Properties["depth"] = fmt.Sprintf("%d", tree.Depth())
	case filestore.FormatXML:
		tree, err := XMLTree(data)
		if err != nil {
			return nil, fmt.Errorf("extract: %s: %w", path, err)
		}
		md.Tree = tree
		md.Properties["depth"] = fmt.Sprintf("%d", tree.Depth())
	case filestore.FormatLog:
		templates := Datamaran(string(data), DefaultDatamaranConfig())
		md.Properties["templates"] = fmt.Sprintf("%d", len(templates))
	}
	return md, nil
}

// JSONTree infers the structure tree of a JSON document breadth-first,
// the GEMMS tree-inference algorithm: object keys become child nodes,
// arrays contribute the union of their element structures.
func JSONTree(data []byte) (*TreeNode, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("json tree: %w", err)
	}
	return jsonNode("$", v), nil
}

// JSONLTree merges the structure of every line of a JSON-lines file
// into one tree.
func JSONLTree(data []byte) (*TreeNode, error) {
	root := &TreeNode{Name: "$", Kind: "array"}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var v any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			return nil, fmt.Errorf("jsonl tree: %w", err)
		}
		mergeChild(root, jsonNode("item", v))
	}
	return root, nil
}

func jsonNode(name string, v any) *TreeNode {
	switch x := v.(type) {
	case map[string]any:
		n := &TreeNode{Name: name, Kind: "object"}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n.Children = append(n.Children, jsonNode(k, x[k]))
		}
		return n
	case []any:
		n := &TreeNode{Name: name, Kind: "array"}
		for _, el := range x {
			mergeChild(n, jsonNode("item", el))
		}
		return n
	default:
		return &TreeNode{Name: name, Kind: "value"}
	}
}

// mergeChild adds child to parent, merging with an existing child of
// the same name (union of structures, as array elements share shape).
func mergeChild(parent, child *TreeNode) {
	for _, existing := range parent.Children {
		if existing.Name == child.Name && existing.Kind == child.Kind {
			for _, gc := range child.Children {
				mergeChild(existing, gc)
			}
			return
		}
	}
	parent.Children = append(parent.Children, child)
}

// XMLTree infers the element structure of an XML document.
func XMLTree(data []byte) (*TreeNode, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var stack []*TreeNode
	var root *TreeNode
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xml tree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &TreeNode{Name: t.Name.Local, Kind: "element"}
			if len(stack) == 0 {
				root = n
			} else {
				mergeChild(stack[len(stack)-1], n)
				// mergeChild may have merged into an existing node; find it.
				parent := stack[len(stack)-1]
				for _, c := range parent.Children {
					if c.Name == n.Name && c.Kind == n.Kind {
						n = c
						break
					}
				}
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xml tree: no root element")
	}
	return root, nil
}

func baseName(path string) string {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndex(base, "."); i > 0 {
		base = base[:i]
	}
	return base
}
