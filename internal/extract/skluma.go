package extract

import (
	"bytes"
	"fmt"
	"math"
	"path"
	"sort"
	"strings"

	"golake/internal/sketch"
	"golake/internal/storage/filestore"
	"golake/internal/table"
)

// ContentMetadata is Skluma-style content and context metadata for one
// file: context from the path, content from a type-specific extractor
// (Sec. 5.1). Unlike GEMMS's structural focus, Skluma samples the data
// itself: keyword summaries for text, aggregates for tabular values,
// null maps for sparse files.
type ContentMetadata struct {
	Path      string
	Name      string
	Extension string
	SizeBytes int
	Format    filestore.Format
	// Keywords are the top content terms with TF scores (free text and
	// string columns).
	Keywords []Keyword
	// NumericSummary aggregates every numeric column (tabular files).
	NumericSummary map[string]NumericAggregate
	// NullFraction is the fraction of null cells (tabular files).
	NullFraction float64
	// TopicHint is a coarse label derived from keywords.
	TopicHint string
}

// Keyword is a scored content term.
type Keyword struct {
	Term  string
	Score float64
}

// NumericAggregate summarizes one numeric column.
type NumericAggregate struct {
	Min, Max, Mean float64
}

// Skluma extracts content/context metadata from a file, dispatching on
// the detected format like the Skluma pipeline's per-type extractors.
func Skluma(p string, data []byte) (*ContentMetadata, error) {
	format := filestore.Detect(p, data)
	md := &ContentMetadata{
		Path:      p,
		Name:      path.Base(p),
		Extension: strings.TrimPrefix(path.Ext(p), "."),
		SizeBytes: len(data),
		Format:    format,
	}
	switch format {
	case filestore.FormatCSV:
		t, err := table.ReadCSV(baseName(p), bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("skluma: %s: %w", p, err)
		}
		md.NumericSummary = map[string]NumericAggregate{}
		totalCells, nullCells := 0, 0
		var textTokens []string
		for _, c := range t.Columns {
			totalCells += c.Len()
			nullCells += c.NullCount()
			if c.Kind.Numeric() {
				prof := table.Profile(c)
				if !math.IsNaN(prof.Mean) {
					md.NumericSummary[c.Name] = NumericAggregate{Min: prof.Min, Max: prof.Max, Mean: prof.Mean}
				}
				continue
			}
			for _, v := range c.Cells {
				textTokens = append(textTokens, sketch.Tokenize(v)...)
			}
		}
		if totalCells > 0 {
			md.NullFraction = float64(nullCells) / float64(totalCells)
		}
		md.Keywords = topKeywords(textTokens, 10)
	case filestore.FormatJSON, filestore.FormatJSONL, filestore.FormatXML, filestore.FormatText, filestore.FormatLog:
		md.Keywords = topKeywords(sketch.Tokenize(string(data)), 10)
	}
	md.TopicHint = topicHint(md.Keywords)
	return md, nil
}

// topKeywords ranks tokens by frequency, dropping stopwords and pure
// numbers, keeping the top n.
func topKeywords(tokens []string, n int) []Keyword {
	tf := map[string]int{}
	for _, t := range tokens {
		if len(t) < 3 || stopwords[t] || isNumber(t) {
			continue
		}
		tf[t]++
	}
	out := make([]Keyword, 0, len(tf))
	for t, c := range tf {
		out = append(out, Keyword{Term: t, Score: float64(c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func topicHint(kws []Keyword) string {
	if len(kws) == 0 {
		return "unknown"
	}
	return kws[0].Term
}

func isNumber(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

var stopwords = map[string]bool{
	"the": true, "and": true, "for": true, "with": true, "that": true,
	"this": true, "from": true, "are": true, "was": true, "has": true,
	"have": true, "not": true, "but": true, "you": true, "all": true,
}
