package extract

import (
	"sort"
	"strings"

	"golake/internal/sketch"
)

// StructureTemplate is one extracted record structure: the generalized
// per-line patterns of a (possibly multi-line) record type, with the
// fraction of input lines it covers.
type StructureTemplate struct {
	Lines    []string
	Coverage float64
	// Records is the number of record instances matched.
	Records int
}

// Key renders the template as a comparable string.
func (t StructureTemplate) Key() string { return strings.Join(t.Lines, "↵") }

// DatamaranConfig tunes the three-step extraction.
type DatamaranConfig struct {
	// MaxRecordSpan is the maximum number of lines per record
	// considered during candidate generation.
	MaxRecordSpan int
	// CoverageThreshold drops candidate templates covering less than
	// this fraction of lines (DATAMARAN's coverage assumption).
	CoverageThreshold float64
}

// DefaultDatamaranConfig mirrors the paper's assumption that real
// record types cover a non-trivial fraction of the file.
func DefaultDatamaranConfig() DatamaranConfig {
	return DatamaranConfig{MaxRecordSpan: 3, CoverageThreshold: 0.05}
}

// Datamaran extracts record structure templates from a log file without
// supervision, following the paper's three steps (Sec. 5.1):
//
//  1. Generation: every line is generalized into a character-class
//     pattern; candidate templates are pattern sequences of span
//     1..MaxRecordSpan, counted in hash tables, and kept only when
//     they satisfy the coverage threshold.
//  2. Pruning: candidates are scored (coverage times specificity) and
//     templates subsumed by a higher-scoring overlapping candidate are
//     removed.
//  3. Refinement: surviving templates are greedily matched against the
//     file to compute final record counts and coverage.
func Datamaran(content string, cfg DatamaranConfig) []StructureTemplate {
	if cfg.MaxRecordSpan <= 0 {
		cfg.MaxRecordSpan = 3
	}
	rawLines := strings.Split(content, "\n")
	lines := make([]string, 0, len(rawLines))
	for _, ln := range rawLines {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	if len(lines) == 0 {
		return nil
	}
	patterns := make([]string, len(lines))
	for i, ln := range lines {
		patterns[i] = sketch.RegexPattern(ln)
	}

	// Step 1: candidate generation.
	type cand struct {
		lines []string
		count int
	}
	counts := map[string]*cand{}
	for span := 1; span <= cfg.MaxRecordSpan; span++ {
		for i := 0; i+span <= len(patterns); i++ {
			seq := patterns[i : i+span]
			key := strings.Join(seq, "↵")
			c, ok := counts[key]
			if !ok {
				c = &cand{lines: append([]string(nil), seq...)}
				counts[key] = c
			}
			c.count++
		}
	}
	total := float64(len(lines))
	var candidates []*cand
	for _, c := range counts {
		// Overlapping counts over-estimate coverage (a run of k equal
		// patterns yields k-s+1 windows of span s); use them only as a
		// cheap upper-bound filter, then recount non-overlapping.
		if float64(c.count*len(c.lines))/total < cfg.CoverageThreshold {
			continue
		}
		c.count = countNonOverlapping(patterns, c.lines)
		if float64(c.count*len(c.lines))/total >= cfg.CoverageThreshold {
			candidates = append(candidates, c)
		}
	}

	// Step 2: pruning by score; more specific templates win over their
	// own sub-sequences at comparable coverage.
	score := func(c *cand) float64 {
		cov := float64(c.count*len(c.lines)) / total
		spec := 0.0
		for _, ln := range c.lines {
			spec += float64(len(ln))
		}
		spec /= float64(len(c.lines)) // average per-line specificity
		return cov * (1 + spec/64)
	}
	sort.Slice(candidates, func(i, j int) bool {
		si, sj := score(candidates[i]), score(candidates[j])
		if si != sj {
			return si > sj
		}
		return strings.Join(candidates[i].lines, "") < strings.Join(candidates[j].lines, "")
	})
	var kept []*cand
	for _, c := range candidates {
		subsumed := false
		for _, k := range kept {
			if contains(k.lines, c.lines) || contains(c.lines, k.lines) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, c)
		}
	}

	// Step 3: refinement — greedy left-to-right matching to compute
	// exclusive coverage; drop templates that never fire.
	matchedRecords := make([]int, len(kept))
	coveredLines := make([]int, len(kept))
	for i := 0; i < len(patterns); {
		best := -1
		bestSpan := 0
		for ti, c := range kept {
			span := len(c.lines)
			if i+span > len(patterns) {
				continue
			}
			ok := true
			for j, want := range c.lines {
				if patterns[i+j] != want {
					ok = false
					break
				}
			}
			if ok && span > bestSpan {
				best, bestSpan = ti, span
			}
		}
		if best < 0 {
			i++
			continue
		}
		matchedRecords[best]++
		coveredLines[best] += bestSpan
		i += bestSpan
	}
	var out []StructureTemplate
	for ti, c := range kept {
		if matchedRecords[ti] == 0 {
			continue
		}
		cov := float64(coveredLines[ti]) / total
		if cov < cfg.CoverageThreshold {
			continue
		}
		out = append(out, StructureTemplate{
			Lines:    c.lines,
			Coverage: cov,
			Records:  matchedRecords[ti],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// countNonOverlapping counts greedy left-to-right non-overlapping
// matches of sub in patterns.
func countNonOverlapping(patterns, sub []string) int {
	n := 0
	for i := 0; i+len(sub) <= len(patterns); {
		ok := true
		for j := range sub {
			if patterns[i+j] != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			n++
			i += len(sub)
		} else {
			i++
		}
	}
	return n
}

// contains reports whether seq contains sub as a contiguous
// subsequence.
func contains(seq, sub []string) bool {
	if len(sub) > len(seq) {
		return false
	}
	for i := 0; i+len(sub) <= len(seq); i++ {
		ok := true
		for j := range sub {
			if seq[i+j] != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TemplateRecovery scores extracted templates against ground-truth
// skeleton patterns: the fraction of true templates for which some
// extracted template matches the generalized pattern sequence.
func TemplateRecovery(extracted []StructureTemplate, truth [][]string) float64 {
	if len(truth) == 0 {
		return 0
	}
	hit := 0
	for _, want := range truth {
		wantKey := strings.Join(want, "↵")
		for _, ex := range extracted {
			if ex.Key() == wantKey {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(truth))
}
