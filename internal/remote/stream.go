package remote

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"golake/internal/query"
	"golake/lakeerr"
)

// stream decodes one member lake's NDJSON response into a RowIterator.
// The framing contract (objects are metadata, arrays are rows):
//
//	{"columns":["city","price"]}   header — read eagerly at open
//	["ams","10"]                   one row per line
//	{"stats":{...}}                clean-end trailer → io.EOF
//	{"error":{"code","message"}}   in-band failure → typed sticky error
//
// Running out of bytes before either trailer means the connection
// dropped mid-stream; that surfaces as a typed unavailable error, never
// a silent short result.
type stream struct {
	client *Client
	resp   *http.Response
	cancel context.CancelFunc
	dec    *json.Decoder
	cols   []string
	start  time.Time

	rows int64
	err  error // sticky terminal error
	done bool  // clean end seen

	reportOnce sync.Once
	closeOnce  sync.Once
	closeErr   error
}

// frame is one decoded metadata object; exactly one field is set.
type frame struct {
	Columns []string        `json:"columns"`
	Stats   json.RawMessage `json:"stats"`
	Error   *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// readHeader consumes the header line so Columns answers before the
// first Next — the union stage needs every source's header up front. A
// member that fails before the body starts answers a non-200 handled by
// OpenStream; a failure after the body started arrives as an in-band
// error object, which may legally be the very first line.
func (s *stream) readHeader(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		s.err = s.client.classify(err)
		return s.err
	}
	var raw json.RawMessage
	if err := s.dec.Decode(&raw); err != nil {
		s.err = s.client.truncatedErr(err)
		return s.err
	}
	var f frame
	if err := json.Unmarshal(raw, &f); err != nil {
		s.err = lakeerr.Errorf(lakeerr.CodeInternal, "remote %s: bad header frame: %v", s.client.member, err)
		return s.err
	}
	if f.Error != nil {
		s.err = lakeerr.Errorf(knownCode(f.Error.Code), "remote %s: %s", s.client.member, f.Error.Message)
		return s.err
	}
	if f.Columns == nil {
		s.err = lakeerr.Errorf(lakeerr.CodeInternal, "remote %s: stream did not start with a columns header", s.client.member)
		return s.err
	}
	s.cols = f.Columns
	return nil
}

// Columns implements query.RowIterator.
func (s *stream) Columns() []string { return s.cols }

// Next implements query.RowIterator: arrays are rows; an object is the
// stats trailer (clean io.EOF) or the typed in-band error. Errors are
// sticky; a clean end is terminal.
func (s *stream) Next(ctx context.Context) (query.Row, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, io.EOF
	}
	if err := ctx.Err(); err != nil {
		// Transient (the stream may be resumed with a live context), so
		// not sticky — mirroring the local iterators' contract.
		return nil, err
	}
	var raw json.RawMessage
	if err := s.dec.Decode(&raw); err != nil {
		s.fail(s.client.truncatedErr(err))
		return nil, s.err
	}
	if len(raw) > 0 && raw[0] == '[' {
		var row []string
		if err := json.Unmarshal(raw, &row); err != nil {
			s.fail(lakeerr.Errorf(lakeerr.CodeInternal, "remote %s: bad row frame: %v", s.client.member, err))
			return nil, s.err
		}
		s.rows++
		return row, nil
	}
	var f frame
	if err := json.Unmarshal(raw, &f); err != nil {
		s.fail(lakeerr.Errorf(lakeerr.CodeInternal, "remote %s: bad metadata frame: %v", s.client.member, err))
		return nil, s.err
	}
	switch {
	case f.Error != nil:
		s.fail(lakeerr.Errorf(knownCode(f.Error.Code), "remote %s: %s", s.client.member, f.Error.Message))
		return nil, s.err
	case f.Stats != nil:
		s.done = true
		s.report("ok")
		return nil, io.EOF
	default:
		s.fail(lakeerr.Errorf(lakeerr.CodeInternal, "remote %s: unexpected metadata frame %s", s.client.member, raw))
		return nil, s.err
	}
}

// fail records the sticky terminal error and its telemetry.
func (s *stream) fail(err error) {
	s.err = err
	s.report(string(lakeerr.CodeOf(err)))
}

// report emits the request telemetry exactly once per stream.
func (s *stream) report(outcome string) {
	s.reportOnce.Do(func() {
		label := lakeerr.Code(outcome)
		if outcome == "ok" {
			label = ""
		}
		s.client.finish(label, s.rows, s.start)
	})
}

// Close implements query.RowIterator: it cancels the request context
// (aborting the member's handler mid-stream), drains a little so the
// connection can be reused on clean ends, and closes the body.
// Idempotent; an early Close reports the "aborted" outcome.
func (s *stream) Close() error {
	s.closeOnce.Do(func() {
		s.report("aborted")
		if s.done {
			// Clean end: the body is at EOF (or nearly), drain the tail
			// so the transport can reuse the connection.
			_, _ = io.Copy(io.Discard, io.LimitReader(s.resp.Body, 1<<12))
		}
		s.cancel()
		s.closeErr = s.resp.Body.Close()
	})
	return s.closeErr
}
