// Package remote makes another golake a member store of this one: a
// Client speaks the existing POST /v1/query NDJSON protocol to a member
// lake's base URL and adapts the framed stream (header line, row
// arrays, stats/error trailer) into the query engine's RowIterator
// contract. The engine pushes predicates, projections, and limits down
// as an ordinary SELECT statement, so to the member the federated hop
// is just another query — and to the engine's fan-in machinery a remote
// lake is just a slow member store, which is exactly what the
// backpressure design was built for.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"golake/internal/query"
	"golake/lakeerr"
)

// Defaults for the zero-value Options.
const (
	// DefaultConnectRetries is how many times a failed connect is
	// retried before the open fails (transport errors only — an HTTP
	// error status is an answer, not a connect failure).
	DefaultConnectRetries = 2
	// DefaultRetryBackoff is the first retry's delay; each subsequent
	// retry doubles it, capped at maxRetryBackoff.
	DefaultRetryBackoff = 50 * time.Millisecond
	maxRetryBackoff     = time.Second
)

// Options tunes one member-lake client.
type Options struct {
	// Timeout bounds each remote query from connect through the last
	// byte of the stream. 0 means no client-side timeout (the member's
	// own admission deadlines still apply).
	Timeout time.Duration
	// ConnectRetries is the number of connect retries (< 0 disables,
	// 0 means DefaultConnectRetries).
	ConnectRetries int
	// RetryBackoff is the initial retry delay (0 = DefaultRetryBackoff),
	// doubled per retry and capped.
	RetryBackoff time.Duration
	// Token, when set, is forwarded as "Authorization: Bearer <token>"
	// so the member lake authenticates the federated hop itself; the
	// requesting user still rides along in X-Lake-User for auditing.
	Token string
	// Client overrides the HTTP client (tests inject transports here).
	// Nil uses a plain &http.Client{} — per-request timeouts come from
	// Timeout, not http.Client.Timeout, so streams may outlive slow
	// first bytes.
	Client *http.Client
}

// Observer receives the client's telemetry; the lake wires its metrics
// registry in here. All methods may be called concurrently.
type Observer interface {
	// RemoteRequest records one finished remote query: outcome is "ok",
	// "aborted" (closed before the trailer), or the lakeerr code of the
	// failure; d spans open through terminal state.
	RemoteRequest(member, outcome string, d time.Duration)
	// RemoteRetry records one connect retry.
	RemoteRetry(member string)
	// RemoteRows records the rows a finished stream delivered.
	RemoteRows(member string, n int64)
}

// Client opens pushed-down query streams against one member lake. It
// implements query.RemoteOpener.
type Client struct {
	member  string
	baseURL string
	opts    Options
	http    *http.Client
	obs     Observer
}

// New builds a client for one member lake. baseURL is the lake's HTTP
// root (e.g. "http://east.lake:8080"); the client appends /v1/query.
func New(member, baseURL string, opts Options) *Client {
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{member: member, baseURL: baseURL, opts: opts, http: hc}
}

// Member returns the member name this client serves.
func (c *Client) Member() string { return c.member }

// Describe implements query.RemoteOpener: the plan's access-path label.
func (c *Client) Describe() string { return c.baseURL }

// SetObserver installs the telemetry sink (nil disables).
func (c *Client) SetObserver(o Observer) { c.obs = o }

// CloseIdle drops the client's pooled keep-alive connections. The lake
// calls it on Close so a shut-down federation parks no transport
// goroutines; in-flight streams are unaffected.
func (c *Client) CloseIdle() { c.http.CloseIdleConnections() }

func (c *Client) retries() int {
	if c.opts.ConnectRetries < 0 {
		return 0
	}
	if c.opts.ConnectRetries == 0 {
		return DefaultConnectRetries
	}
	return c.opts.ConnectRetries
}

func (c *Client) backoff() time.Duration {
	if c.opts.RetryBackoff > 0 {
		return c.opts.RetryBackoff
	}
	return DefaultRetryBackoff
}

// OpenStream implements query.RemoteOpener: it POSTs the pushed-down
// statement to the member's /v1/query with the NDJSON accept header and
// returns the decoded stream. The open is eager — it reads the header
// line before returning, so Columns is known to the union stage without
// a single row having moved. Connect failures retry with capped
// exponential backoff; an HTTP error status decodes the member's typed
// error envelope instead.
func (c *Client) OpenStream(ctx context.Context, spec query.RemoteSpec) (query.RowIterator, error) {
	start := time.Now()
	sctx := ctx
	cancel := context.CancelFunc(func() {})
	if c.opts.Timeout > 0 {
		sctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
	} else {
		sctx, cancel = context.WithCancel(ctx)
	}
	body, err := json.Marshal(map[string]any{"sql": spec.SQL})
	if err != nil {
		cancel()
		return nil, lakeerr.Wrap(lakeerr.CodeInternal, err)
	}
	resp, err := c.connect(sctx, spec, body)
	if err != nil {
		cancel()
		err = c.classify(err)
		c.finish(lakeerr.CodeOf(err), 0, start)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := c.envelopeError(resp)
		_ = resp.Body.Close()
		cancel()
		c.finish(lakeerr.CodeOf(err), 0, start)
		return nil, err
	}
	st := &stream{client: c, resp: resp, cancel: cancel, dec: json.NewDecoder(resp.Body), start: start}
	if err := st.readHeader(sctx); err != nil {
		_ = st.Close()
		return nil, err
	}
	return st, nil
}

// connect performs the POST with connect retries: only transport-level
// failures (no HTTP response at all) retry — the member being slow or
// answering an error is not a connect failure. The backoff sleep aborts
// on context cancellation.
func (c *Client) connect(ctx context.Context, spec query.RemoteSpec, body []byte) (*http.Response, error) {
	delay := c.backoff()
	var lastErr error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			if c.obs != nil {
				c.obs.RemoteRetry(c.member)
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
			if delay > maxRetryBackoff {
				delay = maxRetryBackoff
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
		if spec.User != "" {
			req.Header.Set("X-Lake-User", spec.User)
		}
		if c.opts.Token != "" {
			req.Header.Set("Authorization", "Bearer "+c.opts.Token)
		}
		resp, err := c.http.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// classify wraps a transport-level failure as a typed unavailable error
// naming the member; context expiry keeps its own classification.
func (c *Client) classify(err error) error {
	if code := lakeerr.CodeOf(err); code == lakeerr.CodeDeadlineExceeded {
		return lakeerr.Errorf(lakeerr.CodeDeadlineExceeded, "remote %s: %v", c.member, err)
	}
	return lakeerr.Errorf(lakeerr.CodeUnavailable, "remote %s: %v", c.member, err)
}

// errEnvelope is the v1 error shape, both as a non-200 response body
// and as the in-band NDJSON trailer.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// envelopeError decodes a non-200 response into a typed error carrying
// the member's own classification (unknown codes degrade to internal).
func (c *Client) envelopeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return lakeerr.Errorf(knownCode(env.Error.Code), "remote %s: %s", c.member, env.Error.Message)
	}
	return lakeerr.Errorf(lakeerr.CodeUnavailable, "remote %s: http %d: %s",
		c.member, resp.StatusCode, bytes.TrimSpace(body))
}

// knownCode maps a wire code string onto the taxonomy, so a remote
// not_found stays a not_found here; anything unrecognized (version
// skew) degrades to internal rather than inventing codes.
func knownCode(s string) lakeerr.Code {
	switch code := lakeerr.Code(s); code {
	case lakeerr.CodeNotFound, lakeerr.CodeUnauthorized, lakeerr.CodeInvalidQuery,
		lakeerr.CodeConflict, lakeerr.CodeUnavailable, lakeerr.CodeInternal,
		lakeerr.CodeDeadlineExceeded, lakeerr.CodeResourceExhausted:
		return code
	}
	return lakeerr.CodeInternal
}

// finish reports one request's telemetry exactly once per stream.
func (c *Client) finish(outcome lakeerr.Code, rows int64, start time.Time) {
	if c.obs == nil {
		return
	}
	label := "ok"
	if outcome != "" {
		label = string(outcome)
	}
	c.obs.RemoteRequest(c.member, label, time.Since(start))
	if rows > 0 {
		c.obs.RemoteRows(c.member, rows)
	}
}

// truncatedErr is the mid-stream connection-drop classification: the
// NDJSON framing ends with a stats trailer on success and an error
// trailer on failure, so running out of bytes before either one means
// the member (or the network) died — a typed unavailable error, never a
// silent short result.
func (c *Client) truncatedErr(cause error) error {
	if cause == nil || cause == io.EOF {
		return lakeerr.Errorf(lakeerr.CodeUnavailable,
			"remote %s: stream truncated before the stats trailer (connection dropped mid-stream)", c.member)
	}
	return lakeerr.Errorf(lakeerr.CodeUnavailable,
		"remote %s: stream truncated before the stats trailer: %v", c.member, cause)
}
