package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"golake/internal/query"
	"golake/lakeerr"
)

// memberHandler serves a canned NDJSON stream the way a member lake's
// POST /v1/query does, recording the request it saw.
type memberHandler struct {
	mu    sync.Mutex
	lines []string // written after the header, verbatim
	cols  string   // header line; "" suppresses it
	gotAuth, gotUser, gotAccept string
	calls int
	// abort kills the connection after the rows, before any trailer.
	abort bool
}

func (h *memberHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.gotAuth = r.Header.Get("Authorization")
	h.gotUser = r.Header.Get("X-Lake-User")
	h.gotAccept = r.Header.Get("Accept")
	h.calls++
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	if h.cols != "" {
		fmt.Fprintln(w, h.cols)
	}
	for _, ln := range h.lines {
		fmt.Fprintln(w, ln)
	}
	if h.abort {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // connection drops mid-stream
	}
}

func openStream(t *testing.T, h http.Handler, opts Options) (query.RowIterator, error) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c := New("east", srv.URL, opts)
	return c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT city FROM hotels", User: "dana"})
}

func drain(t *testing.T, it query.RowIterator) ([]query.Row, error) {
	t.Helper()
	var rows []query.Row
	for {
		row, err := it.Next(context.Background())
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
}

func TestOpenStreamHappyPath(t *testing.T) {
	h := &memberHandler{
		cols:  `{"columns":["city","price"]}`,
		lines: []string{`["ams","10"]`, `["del","20"]`, `{"stats":{"rows_out":2}}`},
	}
	it, err := openStream(t, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if got := it.Columns(); len(got) != 2 || got[0] != "city" {
		t.Errorf("columns = %v", got)
	}
	rows, err := drain(t, it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1] != "20" {
		t.Errorf("rows = %v", rows)
	}
	// Terminal EOF is sticky.
	if _, err := it.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Errorf("post-EOF Next = %v", err)
	}
	// The hop carried the identity and the streaming accept header.
	if h.gotUser != "dana" || !strings.Contains(h.gotAccept, "application/x-ndjson") {
		t.Errorf("headers: user=%q accept=%q", h.gotUser, h.gotAccept)
	}
}

func TestOpenStreamForwardsBearerToken(t *testing.T) {
	h := &memberHandler{cols: `{"columns":["c"]}`, lines: []string{`{"stats":{}}`}}
	it, err := openStream(t, h, Options{Token: "sekret"})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if h.gotAuth != "Bearer sekret" {
		t.Errorf("Authorization = %q", h.gotAuth)
	}
}

func TestOpenStreamNon200Envelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"no table hotels"}}`)
	}))
	t.Cleanup(srv.Close)
	c := New("east", srv.URL, Options{})
	_, err := c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT * FROM hotels"})
	if lakeerr.CodeOf(err) != lakeerr.CodeNotFound {
		t.Fatalf("err = %v (code %s), want not_found", err, lakeerr.CodeOf(err))
	}
	if !strings.Contains(err.Error(), "east") {
		t.Errorf("error does not name the member: %v", err)
	}
}

func TestOpenStreamUnknownCodeDegradesToInternal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, `{"error":{"code":"listing_paused","message":"future code"}}`)
	}))
	t.Cleanup(srv.Close)
	c := New("east", srv.URL, Options{})
	_, err := c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT 1"})
	if lakeerr.CodeOf(err) != lakeerr.CodeInternal {
		t.Fatalf("err = %v (code %s), want internal", err, lakeerr.CodeOf(err))
	}
}

func TestInBandErrorTrailer(t *testing.T) {
	h := &memberHandler{
		cols:  `{"columns":["c"]}`,
		lines: []string{`["x"]`, `{"error":{"code":"resource_exhausted","message":"budget blown"}}`},
	}
	it, err := openStream(t, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	rows, err := drain(t, it)
	if len(rows) != 1 {
		t.Errorf("rows before failure = %v", rows)
	}
	if lakeerr.CodeOf(err) != lakeerr.CodeResourceExhausted {
		t.Fatalf("err = %v (code %s), want resource_exhausted", err, lakeerr.CodeOf(err))
	}
	// Sticky: the stream stays failed.
	if _, err2 := it.Next(context.Background()); lakeerr.CodeOf(err2) != lakeerr.CodeResourceExhausted {
		t.Errorf("post-failure Next = %v", err2)
	}
}

// TestTruncatedStreamIsTypedError pins the connection-drop satellite: a
// server killed mid-stream must surface as a typed unavailable error,
// never a silent short result.
func TestTruncatedStreamIsTypedError(t *testing.T) {
	h := &memberHandler{
		cols:  `{"columns":["c"]}`,
		lines: []string{`["r1"]`, `["r2"]`},
		abort: true, // connection drops before any trailer
	}
	it, err := openStream(t, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	rows, err := drain(t, it)
	if err == nil {
		t.Fatalf("drain returned a silent short result of %d rows", len(rows))
	}
	if lakeerr.CodeOf(err) != lakeerr.CodeUnavailable {
		t.Fatalf("err = %v (code %s), want unavailable", err, lakeerr.CodeOf(err))
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error should say truncated: %v", err)
	}
}

// TestErrorAsFirstLine covers a member that fails before emitting its
// header: the open itself returns the typed error.
func TestErrorAsFirstLine(t *testing.T) {
	h := &memberHandler{cols: `{"error":{"code":"invalid_query","message":"parse"}}`}
	_, err := openStream(t, h, Options{})
	if lakeerr.CodeOf(err) != lakeerr.CodeInvalidQuery {
		t.Fatalf("err = %v (code %s), want invalid_query", err, lakeerr.CodeOf(err))
	}
}

func TestMissingHeaderIsInternal(t *testing.T) {
	h := &memberHandler{cols: `["row","before","header"]`}
	_, err := openStream(t, h, Options{})
	if lakeerr.CodeOf(err) != lakeerr.CodeInternal {
		t.Fatalf("err = %v (code %s), want internal", err, lakeerr.CodeOf(err))
	}
}

// failingThenOKTransport fails the first n round trips at the transport
// level, then delegates to the real transport.
type failingThenOKTransport struct {
	mu    sync.Mutex
	fails int
	next  http.RoundTripper
}

func (f *failingThenOKTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	fail := f.fails > 0
	if fail {
		f.fails--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("connection refused")
	}
	return f.next.RoundTrip(r)
}

type countingObserver struct {
	mu       sync.Mutex
	retries  int
	requests []string
	rows     int64
}

func (o *countingObserver) RemoteRequest(member, outcome string, d time.Duration) {
	o.mu.Lock()
	o.requests = append(o.requests, outcome)
	o.mu.Unlock()
}

func (o *countingObserver) RemoteRetry(member string) {
	o.mu.Lock()
	o.retries++
	o.mu.Unlock()
}

func (o *countingObserver) RemoteRows(member string, n int64) {
	o.mu.Lock()
	o.rows += n
	o.mu.Unlock()
}

func TestConnectRetriesThenSucceeds(t *testing.T) {
	h := &memberHandler{cols: `{"columns":["c"]}`, lines: []string{`["v"]`, `{"stats":{}}`}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	hc := &http.Client{Transport: &failingThenOKTransport{fails: 2, next: http.DefaultTransport}}
	c := New("east", srv.URL, Options{Client: hc, RetryBackoff: time.Millisecond})
	obs := &countingObserver{}
	c.SetObserver(obs)
	it, err := c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT c FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(t, it); err != nil {
		t.Fatal(err)
	}
	_ = it.Close()
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.retries != 2 {
		t.Errorf("retries = %d, want 2", obs.retries)
	}
	if len(obs.requests) != 1 || obs.requests[0] != "ok" {
		t.Errorf("requests = %v", obs.requests)
	}
	if obs.rows != 1 {
		t.Errorf("rows = %d", obs.rows)
	}
}

func TestConnectRetriesExhausted(t *testing.T) {
	hc := &http.Client{Transport: &failingThenOKTransport{fails: 100, next: http.DefaultTransport}}
	c := New("east", "http://unused.invalid", Options{Client: hc, RetryBackoff: time.Millisecond})
	obs := &countingObserver{}
	c.SetObserver(obs)
	_, err := c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT 1"})
	if lakeerr.CodeOf(err) != lakeerr.CodeUnavailable {
		t.Fatalf("err = %v (code %s), want unavailable", err, lakeerr.CodeOf(err))
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.retries != DefaultConnectRetries {
		t.Errorf("retries = %d, want %d", obs.retries, DefaultConnectRetries)
	}
	if len(obs.requests) != 1 || obs.requests[0] != string(lakeerr.CodeUnavailable) {
		t.Errorf("requests = %v", obs.requests)
	}
}

func TestTimeoutClassifiesDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	t.Cleanup(srv.Close)
	c := New("slow", srv.URL, Options{Timeout: 20 * time.Millisecond, ConnectRetries: -1})
	_, err := c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT 1"})
	if lakeerr.CodeOf(err) != lakeerr.CodeDeadlineExceeded {
		t.Fatalf("err = %v (code %s), want deadline_exceeded", err, lakeerr.CodeOf(err))
	}
}

func TestEarlyCloseReportsAborted(t *testing.T) {
	h := &memberHandler{
		cols:  `{"columns":["c"]}`,
		lines: []string{`["a"]`, `["b"]`, `{"stats":{}}`},
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c := New("east", srv.URL, Options{})
	obs := &countingObserver{}
	c.SetObserver(obs)
	it, err := c.OpenStream(context.Background(), query.RemoteSpec{SQL: "SELECT c FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	_ = it.Close() // idempotent
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.requests) != 1 || obs.requests[0] != "aborted" {
		t.Errorf("requests = %v, want [aborted]", obs.requests)
	}
}

func TestRingDeterministicAndCovering(t *testing.T) {
	members := []string{"west", "east", "north"}
	a := NewRing(members, 0)
	b := NewRing([]string{"north", "west", "east"}, 0) // order must not matter
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("dataset_%d", i)
		ma, ok := a.Locate(key)
		if !ok {
			t.Fatal("Locate on non-empty ring returned !ok")
		}
		mb, _ := b.Locate(key)
		if ma != mb {
			t.Fatalf("placement of %q depends on member order: %s vs %s", key, ma, mb)
		}
		counts[ma]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Errorf("member %s owns no keys: %v", m, counts)
		}
	}
}

// TestRingStability pins the consistent-hashing property: removing one
// member only moves the keys that member owned.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, 0)
	smaller := NewRing([]string{"a", "b"}, 0)
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		before, _ := full.Locate(key)
		after, _ := smaller.Locate(key)
		if before != "c" && before != after {
			t.Fatalf("key %q moved from surviving member %s to %s", key, before, after)
		}
		if before == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Error("member c owned nothing; stability test is vacuous")
	}
}

func TestRingEmpty(t *testing.T) {
	if _, ok := NewRing(nil, 0).Locate("x"); ok {
		t.Error("empty ring located a member")
	}
	if got := NewRing([]string{"b", "a"}, 4).Members(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Members = %v", got)
	}
}
