package remote

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the per-member virtual-node count: enough points
// that a handful of members split the keyspace within a few percent of
// even, small enough that building a ring is microseconds.
const DefaultVnodes = 64

// Ring is a thin consistent-hash placement helper: it routes a dataset
// name to one of N member lakes, and keeps most placements stable when
// the member set changes (only the keys owned by a removed member
// move). The engine's Locate hook uses it to resolve bare dataset names
// that live on no local store.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the member names with vnodes virtual nodes
// each (<= 0 uses DefaultVnodes). Member order does not matter; the
// same member set always yields the same placements.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Locate returns the member owning key: the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Locate(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
