package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"golake/lakeerr"
)

// checkNoGoroutineLeak snapshots the goroutine count and asserts it
// settles back after the test body — the controller spawns no
// goroutines of its own, so any growth is a parked waiter leak.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		for i := 0; i < 100; i++ {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// TestAdmissionSaturationBurst is the acceptance scenario: quota 2
// concurrent per user, a burst of 16 queries. Exactly 2 run, the
// queue holds a bounded few, and the rest shed with a Retry-After
// hint — and nothing leaks.
func TestAdmissionSaturationBurst(t *testing.T) {
	leak := checkNoGoroutineLeak(t)
	c := New(Config{
		MaxConcurrentPerUser: 2,
		MaxQueuedPerUser:     2,
		MaxQueueWait:         50 * time.Millisecond,
	}, nil)

	const burst = 16
	var (
		admitted atomic.Int32
		peak     atomic.Int32
		running  atomic.Int32
		shed     atomic.Int32
		wg       sync.WaitGroup
	)
	release := make(chan struct{})
	var tickets sync.Map
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := c.Admit(context.Background(), "alice")
			if err != nil {
				var se *ShedError
				if !errors.As(err, &se) {
					t.Errorf("shed error not typed: %v", err)
					return
				}
				if se.RetryAfter <= 0 {
					t.Errorf("shed without Retry-After hint: %+v", se)
				}
				if !lakeerr.IsResourceExhausted(err) {
					t.Errorf("shed not classified resource_exhausted: %q", lakeerr.CodeOf(err))
				}
				shed.Add(1)
				return
			}
			admitted.Add(1)
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-release
			running.Add(-1)
			tickets.Store(i, tk)
		}(i)
	}

	// Let the burst settle: 2 running, up to 2 queued, rest shed.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if int(admitted.Load())+int(shed.Load()) >= burst-2 && c.InFlight() == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.InFlight(); got != 2 {
		t.Errorf("in-flight during burst = %d, want exactly 2", got)
	}
	if got := c.UserInFlight("alice"); got != 2 {
		t.Errorf("user in-flight = %d, want 2", got)
	}
	close(release)
	wg.Wait()
	tickets.Range(func(_, v any) bool {
		v.(*Ticket).Release()
		return true
	})

	if peak.Load() != 2 {
		t.Errorf("peak concurrent executions = %d, want 2", peak.Load())
	}
	// 2 run immediately; up to 2 queued waiters can be handed slots
	// when the first 2 release; everything else must have shed.
	if a := admitted.Load(); a < 2 || a > 4 {
		t.Errorf("admitted = %d, want between 2 (immediate) and 4 (incl. handed-off waiters)", a)
	}
	if s := shed.Load(); int(s) != burst-int(admitted.Load()) {
		t.Errorf("shed = %d, admitted = %d, want them to cover the burst of %d", s, admitted.Load(), burst)
	}
	if got := c.InFlight(); got != 0 {
		t.Errorf("in-flight after release = %d, want 0", got)
	}
	leak()
}

func TestQueueHandsSlotToWaiter(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	c := New(Config{MaxConcurrentPerUser: 1, MaxQueueWait: 2 * time.Second}, nil)
	tk1, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		tk2, err := c.Admit(context.Background(), "u")
		if err == nil {
			tk2.Release()
		}
		got <- err
	}()
	// The second query must be parked, not admitted.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-got:
		t.Fatalf("second admit returned early: %v", err)
	default:
	}
	tk1.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued admit after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slot was not handed to the waiter")
	}
	if c.InFlight() != 0 {
		t.Errorf("in-flight = %d after both released", c.InFlight())
	}
}

func TestQueueWaitTimeoutSheds(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	c := New(Config{MaxConcurrentPerUser: 1, MaxQueueWait: 30 * time.Millisecond}, nil)
	tk, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	defer tk.Release()
	_, err = c.Admit(context.Background(), "u")
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "queue_wait" {
		t.Fatalf("want queue_wait shed, got %v", err)
	}
	if !errors.Is(err, ErrShed) {
		t.Error("shed error should wrap ErrShed")
	}
}

func TestQueueCanceledWhileWaiting(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	c := New(Config{MaxConcurrentPerUser: 1, MaxQueueWait: 5 * time.Second}, nil)
	tk, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	defer tk.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c.Admit(ctx, "u")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the context's own error, got %v", err)
	}
}

func TestRateLimitTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(Config{RatePerSec: 1, Burst: 2}, clock)

	for i := 0; i < 2; i++ {
		tk, err := c.Admit(context.Background(), "u")
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		tk.Release()
	}
	_, err := c.Admit(context.Background(), "u")
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "rate" {
		t.Fatalf("want rate shed, got %v", err)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s (full token deficit)", se.RetryAfter)
	}
	if !lakeerr.IsResourceExhausted(err) {
		t.Errorf("rate shed classified %q", lakeerr.CodeOf(err))
	}

	// One second later one token has refilled.
	now = now.Add(time.Second)
	tk, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	tk.Release()
}

func TestGlobalSaturation(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	c := New(Config{MaxInFlight: 2}, nil)
	tk1, _ := c.Admit(context.Background(), "a")
	tk2, _ := c.Admit(context.Background(), "b")
	_, err := c.Admit(context.Background(), "c")
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	if !lakeerr.IsUnavailable(err) {
		t.Errorf("saturation classified %q, want unavailable (503)", lakeerr.CodeOf(err))
	}
	if _, ok := RetryAfterOf(err); !ok {
		t.Error("saturation shed carries no Retry-After hint")
	}
	tk1.Release()
	tk2.Release()
	tk3, err := c.Admit(context.Background(), "c")
	if err != nil {
		t.Fatalf("admit after drain: %v", err)
	}
	tk3.Release()
}

func TestTicketReleaseIdempotent(t *testing.T) {
	c := New(Config{MaxConcurrentPerUser: 1}, nil)
	tk, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
	tk.Release() // second call must not double-free the slot
	tk2, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatalf("admit after double release: %v", err)
	}
	tk2.Release()
	if c.InFlight() != 0 {
		t.Errorf("in-flight = %d, want 0 (double Release must not underflow)", c.InFlight())
	}
}

func TestEffectiveTimeoutAndBudget(t *testing.T) {
	c := New(Config{
		DefaultTimeout:    2 * time.Second,
		MaxTimeout:        5 * time.Second,
		DefaultMemoryRows: 1000,
		MaxMemoryRows:     5000,
	}, nil)
	if got := c.EffectiveTimeout(0); got != 2*time.Second {
		t.Errorf("default timeout = %v", got)
	}
	if got := c.EffectiveTimeout(3 * time.Second); got != 3*time.Second {
		t.Errorf("explicit timeout = %v", got)
	}
	if got := c.EffectiveTimeout(time.Minute); got != 5*time.Second {
		t.Errorf("clamped timeout = %v", got)
	}
	if got := c.EffectiveMemoryRows(0); got != 1000 {
		t.Errorf("default budget = %d", got)
	}
	if got := c.EffectiveMemoryRows(99999); got != 5000 {
		t.Errorf("clamped budget = %d", got)
	}
	// A clamp with no default still bounds "unbounded" requests.
	c2 := New(Config{MaxTimeout: time.Second}, nil)
	if got := c2.EffectiveTimeout(0); got != time.Second {
		t.Errorf("clamp without default = %v", got)
	}
	// Zero config: everything passes through untouched.
	c3 := New(Config{}, nil)
	if got := c3.EffectiveTimeout(0); got != 0 {
		t.Errorf("zero config timeout = %v", got)
	}
	if got := c3.EffectiveMemoryRows(0); got != 0 {
		t.Errorf("zero config budget = %d", got)
	}
}

func TestHooksObserveOutcomes(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	bump := func(k string) {
		mu.Lock()
		counts[k]++
		mu.Unlock()
	}
	c := New(Config{MaxConcurrentPerUser: 1, MaxQueueWait: 0}, nil)
	c.SetHooks(Hooks{
		Admitted:  func(string) { bump("admitted") },
		Queued:    func(string) { bump("queued") },
		Shed:      func(string, string) { bump("shed") },
		Released:  func(string) { bump("released") },
		QueueWait: func(time.Duration) { bump("wait") },
	})
	tk, err := c.Admit(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(context.Background(), "u"); err == nil {
		t.Fatal("over-quota admit with no queueing should shed")
	}
	tk.Release()
	mu.Lock()
	defer mu.Unlock()
	if counts["admitted"] != 1 || counts["shed"] != 1 || counts["released"] != 1 {
		t.Errorf("hook counts = %v", counts)
	}
}

// TestConcurrentStressInvariant hammers admit/release from many
// goroutines under -race and asserts the per-user cap is never
// violated.
func TestConcurrentStressInvariant(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	const cap = 3
	c := New(Config{MaxConcurrentPerUser: cap, MaxQueueWait: 10 * time.Millisecond}, nil)
	var (
		running atomic.Int32
		wg      sync.WaitGroup
	)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tk, err := c.Admit(context.Background(), "stress")
				if err != nil {
					continue
				}
				if n := running.Add(1); n > cap {
					t.Errorf("cap violated: %d running", n)
				}
				runtime.Gosched()
				running.Add(-1)
				tk.Release()
			}
		}()
	}
	wg.Wait()
	if c.InFlight() != 0 {
		t.Errorf("in-flight = %d after stress", c.InFlight())
	}
}
