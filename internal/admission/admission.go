// Package admission is the query scheduler in front of execution:
// every Lake.Query (and therefore every POST /v1/query) asks it for a
// ticket before the engine runs. It enforces three things per query —
// a deadline, a memory budget, and per-user capacity — and degrades in
// a defined order under load: admit immediately while the user is
// under quota, queue up to a bounded wait while a slot may free up,
// and shed (typed resource_exhausted, HTTP 429 + Retry-After) beyond
// that. A global in-flight cap turns into saturation shedding (typed
// unavailable, HTTP 503) so one process never accepts more work than
// it can execute.
//
// The controller is deliberately allocation-light on the admit path:
// one mutex, a per-user struct, and no goroutines of its own — queued
// waiters park on a channel that the releasing query hands its slot
// to directly (no herd wakeup, FIFO fairness per user).
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"golake/lakeerr"
)

// Config tunes the controller. The zero value admits everything
// (no quotas, no rate limit, no caps) and applies no default deadline
// or budget — admission is opt-in per knob.
type Config struct {
	// MaxConcurrentPerUser caps queries executing at once per user;
	// 0 means unlimited. Queries beyond the cap queue (see
	// MaxQueueWait) and shed once queueing is exhausted.
	MaxConcurrentPerUser int

	// MaxQueuedPerUser bounds the per-user wait queue; 0 defaults to
	// MaxConcurrentPerUser (one queued per running slot), so a burst
	// sheds quickly instead of building unbounded latency.
	MaxQueuedPerUser int

	// MaxQueueWait bounds how long an over-quota query waits for a
	// slot before it is shed. 0 disables queueing entirely: over-quota
	// queries shed immediately.
	MaxQueueWait time.Duration

	// RatePerSec refills each user's token bucket; 0 disables rate
	// limiting. Each admitted or queued query consumes one token.
	RatePerSec float64

	// Burst is the token bucket capacity; defaults to
	// max(1, ceil(RatePerSec)) when rate limiting is on.
	Burst int

	// MaxInFlight caps queries executing at once across all users; 0
	// means unlimited. At the cap new queries are shed as saturated
	// (HTTP 503) — they do not queue, because a saturated process
	// should push back immediately.
	MaxInFlight int

	// DefaultTimeout is applied to queries that set no deadline of
	// their own; 0 leaves them unbounded.
	DefaultTimeout time.Duration

	// MaxTimeout clamps every query deadline, including explicit
	// ones; 0 means no clamp.
	MaxTimeout time.Duration

	// DefaultMemoryRows is the per-query memory budget (rows buffered
	// across fan-in + sort) applied when the request sets none; 0
	// leaves it unbounded.
	DefaultMemoryRows int

	// MaxMemoryRows clamps every per-query memory budget; 0 means no
	// clamp.
	MaxMemoryRows int

	// RetryAfter is the hint attached to shed errors (the HTTP
	// Retry-After header); defaults to 1s. Rate-limit sheds override
	// it with the actual token deficit when that is longer.
	RetryAfter time.Duration
}

// Hooks observe admission outcomes (the golake_admission_* series).
// All fields are optional; callbacks run outside the controller lock
// except Queued, which fires before the wait starts.
type Hooks struct {
	// Admitted fires when a query gets a slot (immediately or after
	// queueing).
	Admitted func(user string)
	// Queued fires when a query starts waiting for a slot; the wait
	// duration is reported via Admitted/Shed QueueWait observation.
	Queued func(user string)
	// Shed fires when a query is rejected: reason is one of
	// "rate", "queue_full", "queue_wait", "canceled", "saturated".
	Shed func(user, reason string)
	// Released fires when an admitted query finishes.
	Released func(user string)
	// QueueWait observes the time a query spent queued before being
	// admitted or shed.
	QueueWait func(d time.Duration)
}

// ErrShed is the sentinel inside every quota/rate/queue rejection, so
// callers can errors.Is for "this was load shedding" regardless of
// reason.
var ErrShed = errors.New("admission: query shed")

// ErrSaturated is the sentinel inside global-saturation rejections
// (HTTP 503): the process as a whole is at capacity, not one user.
var ErrSaturated = errors.New("admission: server saturated")

// ShedError is the typed rejection: Reason says why, RetryAfter hints
// when to try again (the HTTP layer turns it into a Retry-After
// header). It wraps ErrShed or ErrSaturated and is classified
// resource_exhausted or unavailable respectively via lakeerr.
type ShedError struct {
	User       string
	Reason     string // "rate" | "queue_full" | "queue_wait" | "saturated"
	RetryAfter time.Duration
	sentinel   error
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: user %q shed (%s), retry after %s", e.User, e.Reason, e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return e.sentinel }

// RetryAfterOf extracts the retry hint from an error chain; ok is
// false when the error is not an admission rejection.
func RetryAfterOf(err error) (time.Duration, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	return 0, false
}

// Ticket is one admitted query's slot. Release returns it; it is
// idempotent and safe to call from stream-close hooks that may fire
// alongside error paths.
type Ticket struct {
	c    *Controller
	user string
	once sync.Once
}

// Release returns the slot, handing it directly to the user's oldest
// queued waiter if one is parked.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.once.Do(func() { t.c.release(t.user) })
}

// Controller is the scheduler. New with a zero Config admits
// everything and costs one mutex acquisition per query.
type Controller struct {
	cfg   Config
	hooks Hooks
	now   func() time.Time

	mu       sync.Mutex
	users    map[string]*userState
	inFlight int
}

// userState is one user's capacity accounting. States are reaped when
// idle (no in-flight, no waiters, full bucket) so the map stays
// bounded by active users, not ever-seen users.
type userState struct {
	inFlight int
	tokens   float64
	last     time.Time
	waiters  []chan struct{}
}

// New builds a controller. clock is for tests; nil means time.Now.
func New(cfg Config, clock func() time.Time) *Controller {
	if clock == nil {
		clock = time.Now
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxQueuedPerUser <= 0 {
		cfg.MaxQueuedPerUser = cfg.MaxConcurrentPerUser
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.RatePerSec)
		if float64(cfg.Burst) < cfg.RatePerSec {
			cfg.Burst++
		}
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &Controller{cfg: cfg, now: clock, users: make(map[string]*userState)}
}

// SetHooks installs observation callbacks; call before serving.
func (c *Controller) SetHooks(h Hooks) { c.hooks = h }

// Config returns the controller's (normalized) configuration.
func (c *Controller) Config() Config { return c.cfg }

// InFlight reports the global number of admitted, unreleased queries.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inFlight
}

// UserInFlight reports one user's admitted, unreleased queries.
func (c *Controller) UserInFlight(user string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u := c.users[user]; u != nil {
		return u.inFlight
	}
	return 0
}

// EffectiveTimeout resolves a request's deadline against the
// default/clamp knobs: 0 takes DefaultTimeout, and MaxTimeout caps
// the result (including "unbounded" requests when a clamp is set).
func (c *Controller) EffectiveTimeout(req time.Duration) time.Duration {
	if req <= 0 {
		req = c.cfg.DefaultTimeout
	}
	if c.cfg.MaxTimeout > 0 && (req <= 0 || req > c.cfg.MaxTimeout) {
		req = c.cfg.MaxTimeout
	}
	return req
}

// EffectiveMemoryRows resolves a request's memory budget the same way.
func (c *Controller) EffectiveMemoryRows(req int) int {
	if req <= 0 {
		req = c.cfg.DefaultMemoryRows
	}
	if c.cfg.MaxMemoryRows > 0 && (req <= 0 || req > c.cfg.MaxMemoryRows) {
		req = c.cfg.MaxMemoryRows
	}
	return req
}

// Admit asks for a slot for user. It returns a Ticket to Release when
// the query finishes, or a typed rejection: *ShedError wrapped as
// lakeerr resource_exhausted (quota/rate/queue) or unavailable
// (saturation). Over-quota queries block up to MaxQueueWait (bounded
// additionally by ctx) waiting for a slot handed over by a releasing
// query.
func (c *Controller) Admit(ctx context.Context, user string) (*Ticket, error) {
	c.mu.Lock()
	// Saturation first: a process at its global cap pushes back on
	// everyone immediately — queueing would only grow the overload.
	if c.cfg.MaxInFlight > 0 && c.inFlight >= c.cfg.MaxInFlight {
		c.mu.Unlock()
		c.shedHook(user, "saturated")
		return nil, c.shedErr(user, "saturated", c.cfg.RetryAfter, ErrSaturated)
	}
	u := c.user(user)
	// Token bucket: one token per query, refilled continuously.
	if c.cfg.RatePerSec > 0 {
		c.refill(u)
		if u.tokens < 1 {
			retry := c.cfg.RetryAfter
			if d := time.Duration((1 - u.tokens) / c.cfg.RatePerSec * float64(time.Second)); d > retry {
				retry = d
			}
			c.reap(user, u)
			c.mu.Unlock()
			c.shedHook(user, "rate")
			return nil, c.shedErr(user, "rate", retry, ErrShed)
		}
		u.tokens--
	}
	// Under quota: admit now.
	if c.cfg.MaxConcurrentPerUser <= 0 || u.inFlight < c.cfg.MaxConcurrentPerUser {
		u.inFlight++
		c.inFlight++
		c.mu.Unlock()
		if c.hooks.Admitted != nil {
			c.hooks.Admitted(user)
		}
		return &Ticket{c: c, user: user}, nil
	}
	// Over quota: queue if allowed, shed otherwise.
	if c.cfg.MaxQueueWait <= 0 || len(u.waiters) >= c.cfg.MaxQueuedPerUser {
		c.refund(u)
		c.mu.Unlock()
		c.shedHook(user, "queue_full")
		return nil, c.shedErr(user, "queue_full", c.cfg.RetryAfter, ErrShed)
	}
	grant := make(chan struct{})
	u.waiters = append(u.waiters, grant)
	c.mu.Unlock()

	if c.hooks.Queued != nil {
		c.hooks.Queued(user)
	}
	start := c.now()
	timer := time.NewTimer(c.cfg.MaxQueueWait)
	defer timer.Stop()
	select {
	case <-grant:
		// A releasing query handed its slot over (counters already
		// transferred under the lock in release).
		c.waitHook(c.now().Sub(start))
		if c.hooks.Admitted != nil {
			c.hooks.Admitted(user)
		}
		return &Ticket{c: c, user: user}, nil
	case <-timer.C:
		return c.abandon(user, grant, "queue_wait", start, ctx)
	case <-ctx.Done():
		return c.abandon(user, grant, "canceled", start, ctx)
	}
}

// abandon removes a timed-out/canceled waiter. The grant may have
// raced in between the select firing and the lock being taken; in that
// case the slot is already ours and we keep it.
func (c *Controller) abandon(user string, grant chan struct{}, reason string, start time.Time, ctx context.Context) (*Ticket, error) {
	c.mu.Lock()
	u := c.users[user]
	if u != nil {
		for i, w := range u.waiters {
			if w == grant {
				u.waiters = append(u.waiters[:i], u.waiters[i+1:]...)
				c.refund(u)
				c.reap(user, u)
				c.mu.Unlock()
				c.waitHook(c.now().Sub(start))
				c.shedHook(user, reason)
				if reason == "canceled" {
					// The caller's context expired while queued; surface
					// its own error so deadline/cancel classification is
					// preserved.
					return nil, ctx.Err()
				}
				return nil, c.shedErr(user, reason, c.cfg.RetryAfter, ErrShed)
			}
		}
	}
	c.mu.Unlock()
	// Not on the waiter list anymore: release already granted us the
	// slot. Accept it — the counters are transferred.
	<-grant
	c.waitHook(c.now().Sub(start))
	if c.hooks.Admitted != nil {
		c.hooks.Admitted(user)
	}
	return &Ticket{c: c, user: user}, nil
}

// release returns one slot, handing it to the user's oldest waiter
// when one is parked (counters stay put: the slot transfers owner
// without ever being observable as free).
func (c *Controller) release(user string) {
	c.mu.Lock()
	u := c.users[user]
	if u == nil {
		c.mu.Unlock()
		return
	}
	if len(u.waiters) > 0 {
		grant := u.waiters[0]
		u.waiters = u.waiters[1:]
		c.mu.Unlock()
		close(grant)
		if c.hooks.Released != nil {
			c.hooks.Released(user)
		}
		return
	}
	u.inFlight--
	c.inFlight--
	c.reap(user, u)
	c.mu.Unlock()
	if c.hooks.Released != nil {
		c.hooks.Released(user)
	}
}

// user returns (creating if needed) the state for one user. Caller
// holds c.mu.
func (c *Controller) user(user string) *userState {
	u := c.users[user]
	if u == nil {
		u = &userState{last: c.now()}
		if c.cfg.RatePerSec > 0 {
			u.tokens = float64(c.cfg.Burst)
		}
		c.users[user] = u
	}
	return u
}

// refill advances the user's token bucket to now. Caller holds c.mu.
func (c *Controller) refill(u *userState) {
	now := c.now()
	if dt := now.Sub(u.last); dt > 0 {
		u.tokens += dt.Seconds() * c.cfg.RatePerSec
		if max := float64(c.cfg.Burst); u.tokens > max {
			u.tokens = max
		}
	}
	u.last = now
}

// refund returns the token a shed query consumed (it never ran).
// Caller holds c.mu.
func (c *Controller) refund(u *userState) {
	if c.cfg.RatePerSec > 0 {
		u.tokens++
		if max := float64(c.cfg.Burst); u.tokens > max {
			u.tokens = max
		}
	}
}

// reap drops an idle user's state so the map tracks active users, not
// ever-seen ones. Caller holds c.mu.
func (c *Controller) reap(user string, u *userState) {
	if u.inFlight == 0 && len(u.waiters) == 0 &&
		(c.cfg.RatePerSec <= 0 || u.tokens >= float64(c.cfg.Burst)) {
		delete(c.users, user)
	}
}

func (c *Controller) shedErr(user, reason string, retry time.Duration, sentinel error) error {
	code := lakeerr.CodeResourceExhausted
	if sentinel == ErrSaturated {
		code = lakeerr.CodeUnavailable
	}
	return lakeerr.Wrap(code, &ShedError{User: user, Reason: reason, RetryAfter: retry, sentinel: sentinel})
}

func (c *Controller) shedHook(user, reason string) {
	if c.hooks.Shed != nil {
		c.hooks.Shed(user, reason)
	}
}

func (c *Controller) waitHook(d time.Duration) {
	if c.hooks.QueueWait != nil {
		if d < 0 {
			d = 0
		}
		c.hooks.QueueWait(d)
	}
}
