package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"golake/internal/storage/docstore"
	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// ErrUnknownSource classifies FROM items that resolve to no member
// store (or carry an unrecognized prefix).
var ErrUnknownSource = errors.New("query: unknown source")

// Engine executes parsed queries over a polystore.
type Engine struct {
	Poly *polystore.Poly
	// PushDown controls whether selection predicates and projections
	// are evaluated inside the member stores (the optimization
	// Constance and Ontario apply) or centrally after full retrieval.
	// The federated-query benchmark toggles this.
	PushDown bool
}

// NewEngine creates an engine with pushdown enabled.
func NewEngine(p *polystore.Poly) *Engine {
	return &Engine{Poly: p, PushDown: true}
}

// ExecuteSQL parses and executes a statement. The context cancels
// execution between per-store subqueries and during the merge.
func (e *Engine) ExecuteSQL(ctx context.Context, sql string) (*table.Table, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q)
}

// Execute runs a query: one subquery per source, results merged by
// union over the projected columns (missing columns null-padded), then
// limited.
func (e *Engine) Execute(ctx context.Context, q *Query) (*table.Table, error) {
	var parts []*table.Table
	for _, src := range q.Sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		part, err := e.executeSource(src, q)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	merged, err := mergeUnion(ctx, parts, q.Columns)
	if err != nil {
		return nil, err
	}
	if q.Limit > 0 && merged.NumRows() > q.Limit {
		merged = truncate(merged, q.Limit)
	}
	merged.InferTypes()
	return merged, nil
}

// executeSource routes one FROM item to its member store.
func (e *Engine) executeSource(src string, q *Query) (*table.Table, error) {
	kind, name := splitSource(src)
	switch kind {
	case "rel":
		return e.execRelational(name, q)
	case "doc":
		return e.execDocument(name, q)
	case "graph":
		return e.execGraph(name, q)
	case "file":
		return e.execFiles(name, q)
	case "":
		// Resolve bare names: relational, then document, then graph.
		if e.Poly.Rel.Has(name) {
			return e.execRelational(name, q)
		}
		for _, coll := range e.Poly.Docs.Collections() {
			if coll == name {
				return e.execDocument(name, q)
			}
		}
		if len(e.Poly.Graph.NodesByLabel(name)) > 0 {
			return e.execGraph(name, q)
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownSource, name)
	default:
		return nil, fmt.Errorf("%w: bad prefix %q", ErrUnknownSource, kind)
	}
}

func splitSource(src string) (kind, name string) {
	if i := strings.Index(src, ":"); i > 0 {
		return src[:i], src[i+1:]
	}
	return "", src
}

func (e *Engine) execRelational(name string, q *Query) (*table.Table, error) {
	if e.PushDown {
		// Compile each conjunct to a per-column cell predicate; the
		// store resolves columns to indexes and projects during the
		// scan.
		preds := make([]polystore.CellPredicate, len(q.Where))
		for i, p := range q.Where {
			pred := p
			preds[i] = polystore.CellPredicate{Column: p.Column, Match: pred.Matches}
		}
		return e.Poly.Rel.SelectWhere(name, preds, pushableColumns(name, q, e))
	}
	// No pushdown: fetch everything, filter centrally.
	t, err := e.Poly.Rel.Table(name)
	if err != nil {
		return nil, err
	}
	return centralFilter(t, q), nil
}

// pushableColumns returns the projection to push into the store: the
// requested columns that exist there. The predicate is pushed
// separately, so its columns need not survive projection.
func pushableColumns(name string, q *Query, e *Engine) []string {
	if len(q.Columns) == 0 {
		return nil // SELECT *
	}
	names, err := e.Poly.Rel.ColumnNames(name)
	if err != nil {
		return nil
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	var cols []string
	for _, c := range q.Columns {
		if have[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

func (e *Engine) execDocument(name string, q *Query) (*table.Table, error) {
	coll := e.Poly.Docs.Collection(name)
	var docs []docstore.Doc
	if e.PushDown {
		var filters []docstore.Filter
		for _, p := range q.Where {
			f, ok := docFilter(p)
			if !ok {
				// Unpushable predicate: evaluated centrally below.
				continue
			}
			filters = append(filters, f)
		}
		docs = coll.Find(filters...)
	} else {
		docs = coll.All()
	}
	// Materialize requested plus predicate columns; centralFilter
	// evaluates any unpushed predicates and projects the extras away.
	t := docsToTable(name, docs, withPredicateColumns(q))
	return centralFilter(t, q), nil
}

// withPredicateColumns returns the projection extended with predicate
// columns (nil for SELECT *), so central predicate evaluation still
// sees the cells it needs.
func withPredicateColumns(q *Query) []string {
	if len(q.Columns) == 0 {
		return nil
	}
	out := append([]string(nil), q.Columns...)
	have := map[string]bool{}
	for _, c := range out {
		have[c] = true
	}
	for _, p := range q.Where {
		if !have[p.Column] {
			have[p.Column] = true
			out = append(out, p.Column)
		}
	}
	return out
}

// docFilter maps a predicate onto a docstore filter.
func docFilter(p Predicate) (docstore.Filter, bool) {
	var op docstore.Op
	switch p.Op {
	case OpEq:
		op = docstore.OpEq
	case OpNe:
		op = docstore.OpNe
	case OpGt:
		op = docstore.OpGt
	case OpGte:
		op = docstore.OpGte
	case OpLt:
		op = docstore.OpLt
	case OpLte:
		op = docstore.OpLte
	default:
		return docstore.Filter{}, false
	}
	var val any = p.Value
	if p.Numeric {
		var f float64
		_, err := fmt.Sscanf(p.Value, "%g", &f)
		if err == nil {
			val = f
		}
	}
	return docstore.Filter{Path: p.Column, Op: op, Value: val}, true
}

// docsToTable flattens documents into a table over the union of their
// top-level scalar fields (or the requested columns).
func docsToTable(name string, docs []docstore.Doc, want []string) *table.Table {
	fieldSet := map[string]bool{}
	if len(want) > 0 {
		for _, c := range want {
			fieldSet[c] = true
		}
	} else {
		for _, d := range docs {
			for k, v := range d {
				if k == "_id" {
					continue
				}
				switch v.(type) {
				case map[string]any, []any:
				default:
					fieldSet[k] = true
				}
			}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	t := table.New(name)
	for _, f := range fields {
		t.Columns = append(t.Columns, &table.Column{Name: f})
	}
	for _, d := range docs {
		row := make([]string, len(fields))
		for i, f := range fields {
			if v, ok := d[f]; ok {
				row[i] = fmt.Sprintf("%v", v)
			}
		}
		_ = t.AppendRow(row)
	}
	return t
}

func (e *Engine) execGraph(label string, q *Query) (*table.Table, error) {
	nodes := e.Poly.Graph.NodesByLabel(label)
	fieldSet := map[string]bool{}
	if cols := withPredicateColumns(q); cols != nil {
		for _, c := range cols {
			fieldSet[c] = true
		}
	} else {
		fieldSet["id"] = true
		for _, n := range nodes {
			for k := range n.Props {
				fieldSet[k] = true
			}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	t := table.New(label)
	for _, f := range fields {
		t.Columns = append(t.Columns, &table.Column{Name: f})
	}
	for _, n := range nodes {
		row := make([]string, len(fields))
		for i, f := range fields {
			if f == "id" {
				row[i] = n.ID
				continue
			}
			if v, ok := n.Props[f]; ok {
				row[i] = fmt.Sprintf("%v", v)
			}
		}
		_ = t.AppendRow(row)
	}
	return centralFilter(t, q), nil
}

// execFiles lists raw objects under a prefix as (path, size, format).
func (e *Engine) execFiles(prefix string, q *Query) (*table.Table, error) {
	t := table.New("files")
	t.Columns = []*table.Column{{Name: "path"}, {Name: "size"}, {Name: "format"}}
	for _, info := range e.Poly.Files.List(prefix) {
		_ = t.AppendRow([]string{info.Path, fmt.Sprintf("%d", info.Size), string(info.Format)})
	}
	return centralFilter(t, q), nil
}

// centralFilter applies predicates and projection in the engine (used
// when pushdown is off or a store cannot evaluate them).
func centralFilter(t *table.Table, q *Query) *table.Table {
	names := t.ColumnNames()
	out := t.Filter(func(row []string) bool {
		m := make(map[string]string, len(names))
		for i, n := range names {
			m[n] = row[i]
		}
		return rowMatches(m, q.Where)
	})
	if len(q.Columns) == 0 {
		return out
	}
	var present []string
	for _, c := range q.Columns {
		if out.HasColumn(c) {
			present = append(present, c)
		}
	}
	proj, err := out.Project(present...)
	if err != nil {
		return out
	}
	// Null-pad requested-but-missing columns so union aligns.
	for _, c := range q.Columns {
		if !proj.HasColumn(c) {
			proj.Columns = append(proj.Columns, &table.Column{
				Name:  c,
				Cells: make([]string, proj.NumRows()),
			})
		}
	}
	reordered, err := proj.Project(q.Columns...)
	if err != nil {
		return proj
	}
	return reordered
}

func rowMatches(row map[string]string, preds []Predicate) bool {
	for _, p := range preds {
		cell, ok := row[p.Column]
		if !ok {
			return false
		}
		if !p.Matches(cell) {
			return false
		}
	}
	return true
}

// mergeUnion unions the parts over the projected columns (or the union
// of all part columns when projecting *). The merge is the central
// post-retrieval loop, so it honors cancellation between parts and
// every few thousand rows.
func mergeUnion(ctx context.Context, parts []*table.Table, want []string) (*table.Table, error) {
	cols := want
	if len(cols) == 0 {
		seen := map[string]bool{}
		for _, p := range parts {
			for _, c := range p.ColumnNames() {
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
		}
	}
	out := table.New("result")
	for _, c := range cols {
		out.Columns = append(out.Columns, &table.Column{Name: c})
	}
	for _, p := range parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		names := p.ColumnNames()
		idx := map[string]int{}
		for i, n := range names {
			idx[n] = i
		}
		for r := 0; r < p.NumRows(); r++ {
			if r%4096 == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			row := p.Row(r)
			rec := make([]string, len(cols))
			for i, c := range cols {
				if j, ok := idx[c]; ok {
					rec[i] = row[j]
				}
			}
			_ = out.AppendRow(rec)
		}
	}
	return out, nil
}

func truncate(t *table.Table, n int) *table.Table {
	i := 0
	return t.Filter(func([]string) bool {
		i++
		return i <= n
	})
}
