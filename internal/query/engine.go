package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"golake/internal/storage/docstore"
	"golake/internal/storage/filestore"
	"golake/internal/storage/graphstore"
	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// ErrUnknownSource classifies FROM items that resolve to no member
// store (or carry an unrecognized prefix).
var ErrUnknownSource = errors.New("query: unknown source")

// Engine executes parsed queries over a polystore. Execution is a
// pull-based row-iterator pipeline: per-source scan iterators feed a
// streaming union-merge, with predicates, projection, and LIMIT as
// composable stages — so a LIMIT n query stops pulling from the source
// scans after n rows, and memory stays bounded by one row per stage
// rather than the full federated result.
type Engine struct {
	Poly *polystore.Poly
	// PushDown controls whether selection predicates and projections
	// are evaluated inside the member stores (the optimization
	// Constance and Ontario apply) or centrally after full retrieval.
	// The federated-query benchmark toggles this.
	PushDown bool
	// FanIn configures concurrent fan-in across member stores: with
	// Workers > 1, source scans are opened and drained in parallel
	// behind bounded per-source buffers (ParallelUnion), so a slow
	// member store no longer stalls the whole federated stream. The
	// zero value keeps the sequential union and its deterministic
	// source-concatenation row order.
	FanIn FanInOptions
	// BatchRows sizes the columnar pipeline's batches (0 =
	// DefaultBatchRows); Request.BatchRows overrides it per query.
	BatchRows int
	// DisableBatch forces row-mode execution even for queries the
	// columnar pipeline could serve — the regression/benchmark escape
	// hatch.
	DisableBatch bool
	// Fault is the chaos-test stage hook: when set, it is consulted at
	// named pipeline points ("open" before the source scans, "next"
	// before each row the stream serves) and a non-nil return is
	// injected as that stage's failure. Nil in production — the check
	// costs one pointer test per query.
	Fault func(stage string) error
	// Remotes maps member-lake names to their stream openers: a FROM
	// item "east:orders" routes to Remotes["east"] as a pushed-down
	// sub-query over the /v1/query NDJSON protocol, and the returned
	// stream joins the union like any local scan — remote lakes are just
	// slow member stores to the fan-in machinery. Nil for a purely local
	// engine.
	Remotes map[string]RemoteOpener
	// Locate routes a bare FROM item that resolves to no local member
	// store to a remote member by name (the consistent-hash placement
	// helper); the returned member must exist in Remotes. Nil disables
	// routing — unknown bare names stay errors.
	Locate func(dataset string) (member string, ok bool)
}

// execEnv carries the per-request execution context the per-source
// scans need beyond the statement: the effective order and limit (for
// remote ORDER BY/LIMIT pushdown), the identity to forward to member
// lakes, and the intra-source shard width for relational scans.
type execEnv struct {
	order  []OrderKey
	limit  int
	user   string
	shards int
}

// NewEngine creates an engine with pushdown enabled.
func NewEngine(p *polystore.Poly) *Engine {
	return &Engine{Poly: p, PushDown: true}
}

// Query is the engine's single entry point: it parses the request's
// statement, composes the typed options with what the statement says
// (request Order overrides, the stricter Limit wins, FanIn 0 resolves
// to the engine default or one puller per CPU), builds the typed plan,
// and opens the instrumented pipeline. An EXPLAIN statement — or
// Request.Explain — plans without opening any source scan and returns
// a rowless stream whose Plan carries the answer.
func (e *Engine) Query(ctx context.Context, req Request) (*RowStream, error) {
	planStart := time.Now()
	q, err := Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	order := q.Order
	if len(req.Order) > 0 {
		order = req.Order
	}
	limit := CombineLimit(q.Limit, req.Limit)
	opts := e.resolveFanIn(req)
	// The memory budget is shared by every buffering stage of this one
	// query: fan-in queues and the sort heap charge against it.
	opts.Budget = NewMemBudget(req.MemoryRows)
	env := execEnv{order: order, limit: limit, user: req.User, shards: req.Shards}
	plan, err := e.plan(q, order, limit, opts, env.shards)
	if err != nil {
		return nil, err
	}
	plan.MemoryRows = req.MemoryRows
	plan.Timeout = req.Timeout
	batchRows := e.resolveBatchRows(req)
	useBatch := e.batchEligible(q)
	if useBatch {
		plan.Batch = fmt.Sprintf("columnar (%d rows/batch)", batchRows)
	} else {
		plan.Batch = "row (source without batch scan)"
	}
	analyze := q.Analyze || req.Analyze
	if (q.Explain || req.Explain) && !analyze {
		// plan validated sort keys against an explicit projection; for
		// SELECT * the header comes from the stores, so resolve it here
		// — EXPLAIN must reject exactly what execution would. Remote
		// headers are unknowable without opening the stream, so a plan
		// with a remote source defers the check to execution.
		if len(q.Columns) == 0 && len(order) > 0 && !e.hasRemoteSource(q) {
			if err := validateOrder(order, e.starColumns(q)); err != nil {
				return nil, err
			}
		}
		return &RowStream{it: &emptyIterator{cols: q.Columns}, plan: plan, explain: true}, nil
	}
	trace := &Trace{}
	trace.Add("plan", time.Since(planStart))
	if analyze {
		// stream rejects explain-marked queries; run the underlying
		// SELECT with full instrumentation instead.
		qq := *q
		qq.Explain, qq.Analyze = false, false
		q = &qq
	}
	if e.Fault != nil {
		if err := e.Fault("open"); err != nil {
			return nil, err
		}
	}
	openStart := time.Now()
	var it RowIterator
	var counters []*sourceCounter
	var bit BatchIterator
	var bmeter *batchMeter
	if useBatch {
		it, bit, bmeter, counters, err = e.streamBatches(ctx, q, env, opts, batchRows)
	} else {
		it, counters, err = e.stream(ctx, q, env, opts, true)
	}
	if err != nil {
		return nil, err
	}
	trace.Add("open-sources", time.Since(openStart))
	st := &RowStream{it: it, bit: bit, bmeter: bmeter, plan: plan, counters: counters, trace: trace}
	if s, ok := it.(*sortIterator); ok {
		st.sorter = s
	}
	if e.Fault != nil {
		st.it = &faultIterator{in: it, fault: e.Fault}
		if bit != nil {
			st.bit = &faultBatchIterator{in: bit, fault: e.Fault}
		}
	}
	if !analyze {
		return st, nil
	}
	// EXPLAIN ANALYZE: drain the instrumented pipeline to completion,
	// discard the rows, and hand back a rowless stream whose plan
	// carries the live counters and span timings.
	for {
		if _, err := st.Next(ctx); err != nil {
			if err == io.EOF {
				break
			}
			_ = st.Close()
			return nil, err
		}
	}
	_ = st.Close()
	stats := st.Stats()
	plan.Analyzed = &stats
	return &RowStream{it: &emptyIterator{cols: st.Columns()}, plan: plan, explain: true}, nil
}

// resolveFanIn resolves a request's fan-in against the engine
// configuration: an explicit request width wins (1 = sequential), then
// the engine's configured fan-in, then the CPU-wide default.
func (e *Engine) resolveFanIn(req Request) FanInOptions {
	w := req.FanIn
	if w <= 0 {
		w = e.FanIn.Workers
	}
	if w <= 0 {
		w = DefaultFanIn()
	}
	b := req.BufferRows
	if b <= 0 {
		b = e.FanIn.BufferRows
	}
	return FanInOptions{Workers: w, BufferRows: b}
}

// resolveBatchRows resolves a request's batch size against the engine
// configuration: an explicit request size wins, then the engine's, then
// DefaultBatchRows.
func (e *Engine) resolveBatchRows(req Request) int {
	if req.BatchRows > 0 {
		return req.BatchRows
	}
	if e.BatchRows > 0 {
		return e.BatchRows
	}
	return DefaultBatchRows
}

// batchEligible reports whether the columnar pipeline can serve the
// query: every FROM item must resolve to the relational store (the one
// member store with a batch scan) or a remote member lake (whose row
// stream re-batches through the Batches adapter, keeping the central
// filter/union/sort stages vectorized). Anything else — document,
// graph, file, or mixed sources — falls back to the row pipeline
// unchanged.
func (e *Engine) batchEligible(q *Query) bool {
	if e.DisableBatch || len(q.Sources) == 0 {
		return false
	}
	for _, src := range q.Sources {
		kind, _, err := e.resolveKind(src)
		if err != nil || (kind != "rel" && kind != "remote") {
			return false
		}
	}
	return true
}

// CombineLimit composes two row caps; zero means unbounded, otherwise
// the stricter cap wins. The Lake uses it to fold WithMaxResults into
// a request's limit before the engine sees it.
func CombineLimit(a, b int) int {
	if a <= 0 {
		return b
	}
	if b > 0 && b < a {
		return b
	}
	return a
}

// plan builds the typed execution plan: per-source access paths with
// the predicates/projections that will be pushed down, the effective
// union width, and the sort strategy. Source resolution failures
// surface here, so EXPLAIN of an unknown source errors like execution
// would.
func (e *Engine) plan(q *Query, order []OrderKey, limit int, opts FanInOptions, shards int) (*Plan, error) {
	p := &Plan{Statement: q.String(), FanIn: 1, Sort: "none", Limit: limit}
	// With an explicit projection the result header is known before any
	// source opens; reject unsortable keys here so EXPLAIN reports the
	// same failure execution would. (SELECT * headers depend on the
	// sources; the stream assembly re-checks against the real header.)
	if len(q.Columns) > 0 {
		if err := validateOrder(order, q.Columns); err != nil {
			return nil, err
		}
	}
	for _, k := range order {
		p.Order = append(p.Order, k.String())
	}
	if len(order) > 0 {
		if limit > 0 {
			p.Sort = fmt.Sprintf("top-k heap (k=%d)", limit)
		} else {
			p.Sort = "full sort"
		}
	}
	// The effective union width counts shard cursors too: one rel source
	// scanned in K shards feeds K iterators into the same fan-in.
	effective := 0
	for _, src := range q.Sources {
		if kind, _, err := e.resolveKind(src); err == nil && kind == "rel" && shards > 1 {
			effective += shards
		} else {
			effective++
		}
	}
	if !opts.sequential() && effective >= 2 {
		w := opts.Workers
		if w > effective {
			w = effective
		}
		p.FanIn = w
		p.BufferRows = opts.bufferRows()
	}
	for _, src := range q.Sources {
		kind, name, err := e.resolveKind(src)
		if err != nil {
			return nil, err
		}
		sp := SourcePlan{Source: src, Store: kind}
		switch kind {
		case "rel":
			// Execution fails on a missing table when the scan opens;
			// the plan keeps that parity so EXPLAIN is an honest probe.
			if !e.Poly.Rel.Has(name) {
				return nil, fmt.Errorf("%w: %s", polystore.ErrNoTable, name)
			}
			sp.Access = "table " + name
			if shards > 1 {
				sp.Access = fmt.Sprintf("table %s (%d range shards)", name, shards)
			}
			if e.PushDown {
				for _, pr := range q.Where {
					sp.Pushdown = append(sp.Pushdown, pr.String())
				}
				sp.Project = pushableColumns(name, q, e)
			}
		case "remote":
			member, ds := remoteMember(name)
			sp.Access = "remote lake " + member + " (" + e.Remotes[member].Describe() + "), dataset " + ds
			if e.PushDown {
				for _, pr := range q.Where {
					sp.Pushdown = append(sp.Pushdown, pr.String())
				}
				sp.Project = withPredicateColumns(q)
			}
		case "doc":
			sp.Access = "collection " + name
			if e.PushDown {
				for _, pr := range q.Where {
					if _, ok := docFilter(pr); ok {
						sp.Pushdown = append(sp.Pushdown, pr.String())
					}
				}
			}
		case "graph":
			sp.Access = "label " + name
		case "file":
			sp.Access = "prefix " + name
		}
		p.Sources = append(p.Sources, sp)
	}
	return p, nil
}

// ExecuteSQL parses and executes a statement, materializing the full
// result. The context cancels execution between rows.
func (e *Engine) ExecuteSQL(ctx context.Context, sql string) (*table.Table, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q)
}

// StreamSQL parses a statement and opens its streaming execution with
// the engine's configured fan-in.
//
// Deprecated: use Query, which carries the statement and its execution
// options in one Request and returns plan/stats introspection.
func (e *Engine) StreamSQL(ctx context.Context, sql string) (RowIterator, error) {
	return e.StreamSQLFanIn(ctx, sql, e.FanIn)
}

// StreamSQLFanIn parses a statement and opens its streaming execution
// with an explicit fan-in configuration (per-query override of the
// engine default).
//
// Deprecated: use Query with Request.FanIn/BufferRows.
func (e *Engine) StreamSQLFanIn(ctx context.Context, sql string, opts FanInOptions) (RowIterator, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.StreamFanIn(ctx, q, opts)
}

// Execute runs a parsed query and collects the streamed rows into a
// table — the thin materializing wrapper over the pipeline that keeps
// table-shaped callers working. It honors the engine's configured
// fan-in (sequential when unset), never the CPU-wide Request default.
func (e *Engine) Execute(ctx context.Context, q *Query) (*table.Table, error) {
	it, _, err := e.stream(ctx, q, execEnv{order: q.Order, limit: q.Limit}, e.FanIn, false)
	if err != nil {
		return nil, err
	}
	return Collect(ctx, it)
}

// Stream opens the query's iterator pipeline with the engine's
// configured fan-in.
//
// Deprecated: use Query.
func (e *Engine) Stream(ctx context.Context, q *Query) (RowIterator, error) {
	return e.StreamFanIn(ctx, q, e.FanIn)
}

// StreamFanIn opens a parsed query's pipeline with an explicit fan-in
// configuration. With Workers > 1 the source scans are both opened and
// drained concurrently (ParallelUnion); otherwise the pipeline is the
// sequential union with its deterministic row order.
//
// Deprecated: use Query with Request.FanIn/BufferRows.
func (e *Engine) StreamFanIn(ctx context.Context, q *Query, opts FanInOptions) (RowIterator, error) {
	it, _, err := e.stream(ctx, q, execEnv{order: q.Order, limit: q.Limit}, opts, false)
	return it, err
}

// stream assembles one query pipeline: per-source scan iterators
// (opened in parallel when fanning in), optionally instrumented with
// per-source counters, merged by the union, then ordered and capped —
// ORDER BY with a limit runs as a bounded top-K heap that subsumes the
// LIMIT stage. Source resolution errors surface here, before any rows
// flow; row-level failures (including cancellation) surface from Next.
func (e *Engine) stream(ctx context.Context, q *Query, env execEnv, opts FanInOptions, collectStats bool) (RowIterator, []*sourceCounter, error) {
	if q.Explain {
		// Row-shaped entry points have nothing to return for EXPLAIN —
		// and silently executing the underlying SELECT would be worse.
		// Query handles explain before reaching here.
		return nil, nil, fmt.Errorf("%w: EXPLAIN has no row result on this entry point; use Query", ErrSyntax)
	}
	order, limit := env.order, env.limit
	var sources []RowIterator
	var labels []string
	var err error
	if opts.sequential() || len(q.Sources) < 2 {
		sources, labels, err = e.openSources(ctx, q, env)
	} else {
		sources, labels, err = e.openSourcesParallel(ctx, q, env, opts.Workers)
	}
	if err != nil {
		return nil, nil, err
	}
	var counters []*sourceCounter
	if collectStats {
		counters = make([]*sourceCounter, len(sources))
		for i, src := range sources {
			c := &sourceCounter{source: labels[i]}
			counters[i] = c
			sources[i] = &meteredIterator{in: src, c: c}
		}
	}
	it := ParallelUnion(ctx, sources, q.Columns, opts)
	if len(order) > 0 {
		// The sort stage runs over the union header; a key addressing a
		// column that is not in the result would silently compare empty
		// cells — reject it instead of returning wrongly-ordered rows.
		if err := validateOrder(order, it.Columns()); err != nil {
			_ = it.Close()
			return nil, nil, err
		}
		it = SortWithBudget(it, order, limit, opts.Budget)
	} else {
		it = Limit(it, limit)
	}
	return it, counters, nil
}

// streamBatches assembles the columnar pipeline for an all-relational
// query: per-source batch scans fill vectors zero-copy from the store
// snapshot, the vectorized filter narrows each batch's selection
// centrally (predicates are evaluated once per vector, not pushed into
// the cursor), the batch union remaps whole columns onto the result
// header (null-padding what a source lacks — the projection stage), a
// meter counts batches for stats and observability, and LIMIT slices
// the final batch. ORDER BY re-rowifies through the shared top-K sort
// stage — then the returned BatchIterator is nil and only the row face
// serves the output. Output is byte-identical to the row pipeline
// (modulo the arrival-order nondeterminism a parallel fan-in already
// has).
func (e *Engine) streamBatches(ctx context.Context, q *Query, env execEnv, opts FanInOptions, batchRows int) (RowIterator, BatchIterator, *batchMeter, []*sourceCounter, error) {
	order, limit := env.order, env.limit
	sources := make([]BatchIterator, 0, len(q.Sources))
	counters := make([]*sourceCounter, 0, len(q.Sources))
	closeAll := func() {
		for _, s := range sources {
			_ = s.Close()
		}
	}
	addSource := func(bi BatchIterator, label string) {
		bi = FilterBatches(bi, q.Where)
		c := &sourceCounter{source: label}
		counters = append(counters, c)
		sources = append(sources, &meteredBatchIterator{in: bi, c: c})
	}
	for _, src := range q.Sources {
		if err := ctx.Err(); err != nil {
			closeAll()
			return nil, nil, nil, nil, err
		}
		kind, name, err := e.resolveKind(src) // "rel" or "remote" (batchEligible)
		if err != nil {
			closeAll()
			return nil, nil, nil, nil, err
		}
		if kind == "remote" {
			// A member lake ships rows over NDJSON; re-batch them so the
			// central filter/union/sort stages stay vectorized. The
			// pushed projection includes predicate columns, so the
			// central filter re-evaluates exactly what the member did.
			it, err := e.openRemote(ctx, name, q, env)
			if err != nil {
				closeAll()
				return nil, nil, nil, nil, err
			}
			addSource(Batches(it, batchRows), src)
			continue
		}
		var proj []string
		if e.PushDown {
			proj = batchPushableColumns(name, q, e)
		}
		curs, err := e.Poly.Rel.ScanWhereShards(name, nil, proj, env.shards)
		if err != nil {
			closeAll()
			return nil, nil, nil, nil, err
		}
		for k, cur := range curs {
			addSource(&relBatchIterator{cur: cur, rows: batchRows}, shardLabel(src, k, len(curs)))
		}
	}
	u := ParallelUnionBatches(ctx, sources, q.Columns, opts, batchRows)
	if len(order) > 0 {
		if err := validateOrder(order, u.Columns()); err != nil {
			_ = u.Close()
			return nil, nil, nil, nil, err
		}
	}
	meter := &batchMeter{in: u, capacity: batchRows}
	if len(order) > 0 {
		return SortBatchesWithBudget(meter, order, limit, opts.Budget), nil, meter, counters, nil
	}
	bit := LimitBatches(meter, limit)
	return Rows(bit), bit, meter, counters, nil
}

// batchPushableColumns is the projection the batch pipeline pushes into
// the store: the requested columns plus the predicate columns (the
// filter runs centrally over vectors, so its inputs must survive the
// scan), intersected with what the table has. nil for SELECT *.
func batchPushableColumns(name string, q *Query, e *Engine) []string {
	want := withPredicateColumns(q)
	if want == nil {
		return nil
	}
	names, err := e.Poly.Rel.ColumnNames(name)
	if err != nil {
		return nil
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	var cols []string
	for _, c := range want {
		if have[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// relBatchIterator adapts a relational store cursor to the batch
// pipeline: each Next pulls one column-wise batch from the snapshot —
// zero-copy runs when nothing was pushed down — and wraps the runs as
// typed vectors carrying the table's column kinds.
type relBatchIterator struct {
	cur  *polystore.Cursor
	rows int
}

func (r *relBatchIterator) Columns() []string { return r.cur.Columns() }

func (r *relBatchIterator) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cells, n := r.cur.NextBatch(r.rows)
	if n == 0 {
		return nil, io.EOF
	}
	kinds := r.cur.Kinds()
	vecs := make([]*Vector, len(cells))
	for j := range cells {
		vecs[j] = NewVector(kinds[j], cells[j])
	}
	return NewBatch(r.cur.Columns(), vecs), nil
}

func (r *relBatchIterator) Close() error { return r.cur.Close() }

// starColumns computes the SELECT * result header without opening any
// scan: the union of the source headers in first-seen order, mirroring
// what the union stage would produce. Explain-time ORDER BY validation
// uses it; sources that fail to resolve are skipped (plan building
// already surfaced their error).
func (e *Engine) starColumns(q *Query) []string {
	var cols []string
	seen := map[string]bool{}
	add := func(cs ...string) {
		for _, c := range cs {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	for _, src := range q.Sources {
		kind, name, err := e.resolveKind(src)
		if err != nil {
			continue
		}
		switch kind {
		case "remote":
			// A remote header is unknowable without opening the stream;
			// callers with remote sources defer validation to execution.
		case "rel":
			if names, err := e.Poly.Rel.ColumnNames(name); err == nil {
				add(names...)
			}
		case "doc":
			add(docFields(e.Poly.Docs.Collection(name).All(), nil)...)
		case "graph":
			add("id")
			for _, n := range e.Poly.Graph.NodesByLabel(name) {
				for k := range n.Props {
					add(k)
				}
			}
		case "file":
			add("path", "size", "format")
		}
	}
	return cols
}

// validateOrder checks every sort key against the result header.
func validateOrder(order []OrderKey, cols []string) error {
	have := make(map[string]bool, len(cols))
	for _, c := range cols {
		have[c] = true
	}
	for _, k := range order {
		if !have[k.Column] {
			return fmt.Errorf("%w: ORDER BY column %q is not in the result (project it or use SELECT *)", ErrSyntax, k.Column)
		}
	}
	return nil
}

// openSources resolves and opens every FROM item in order, returning
// the opened iterators plus a per-iterator stats label (a relational
// source scanned in K shards contributes K iterators).
func (e *Engine) openSources(ctx context.Context, q *Query, env execEnv) ([]RowIterator, []string, error) {
	var sources []RowIterator
	var labels []string
	closeAll := func() {
		for _, s := range sources {
			_ = s.Close()
		}
	}
	for _, src := range q.Sources {
		if err := ctx.Err(); err != nil {
			closeAll()
			return nil, nil, err
		}
		its, ls, err := e.openSource(ctx, src, q, env)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		sources = append(sources, its...)
		labels = append(labels, ls...)
	}
	return sources, labels, nil
}

// openSourcesParallel opens the source scans concurrently, at most
// workers at a time — member-store snapshots are taken under their
// stores' read locks and remote opens are network round-trips, so
// opening is safe and worthwhile to overlap, and a store that is slow
// to open no longer delays the others. On failure every opened iterator
// is closed and the error of the lowest-indexed failing source is
// returned, matching the sequential open's first-error semantics.
func (e *Engine) openSourcesParallel(ctx context.Context, q *Query, env execEnv, workers int) ([]RowIterator, []string, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sources := make([][]RowIterator, len(q.Sources))
	labels := make([][]string, len(q.Sources))
	errs := make([]error, len(q.Sources))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(q.Sources))
	for i, src := range q.Sources {
		go func(i int, src string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sources[i], labels[i], errs[i] = e.openSource(ctx, src, q, env)
		}(i, src)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, group := range sources {
				for _, s := range group {
					_ = s.Close()
				}
			}
			return nil, nil, err
		}
	}
	var flatSources []RowIterator
	var flatLabels []string
	for i := range sources {
		flatSources = append(flatSources, sources[i]...)
		flatLabels = append(flatLabels, labels[i]...)
	}
	return flatSources, flatLabels, nil
}

// openSource routes one FROM item to its member store's scan
// iterator(s): most sources open exactly one, a relational source with
// env.shards > 1 opens one per range shard of the same snapshot.
func (e *Engine) openSource(ctx context.Context, src string, q *Query, env execEnv) ([]RowIterator, []string, error) {
	kind, name, err := e.resolveKind(src)
	if err != nil {
		return nil, nil, err
	}
	one := func(it RowIterator, err error) ([]RowIterator, []string, error) {
		if err != nil {
			return nil, nil, err
		}
		return []RowIterator{it}, []string{src}, nil
	}
	switch kind {
	case "rel":
		return e.scanRelationalShards(src, name, q, env.shards)
	case "remote":
		return one(e.openRemote(ctx, name, q, env))
	case "doc":
		return one(e.scanDocument(name, q))
	case "graph":
		return one(e.scanGraph(name, q))
	default:
		return one(e.scanFiles(name, q))
	}
}

// openRemote opens the pushed-down sub-query stream against the member
// lake a resolved "member:dataset" name addresses. With pushdown the
// member already filtered and projected, so the stream joins the union
// directly; without it the central stages wrap it like any other
// unpushed scan.
func (e *Engine) openRemote(ctx context.Context, name string, q *Query, env execEnv) (RowIterator, error) {
	member, ds := remoteMember(name)
	opener := e.Remotes[member]
	if opener == nil {
		return nil, fmt.Errorf("%w: no remote member %q", ErrUnknownSource, member)
	}
	it, err := opener.OpenStream(ctx, RemoteSpec{SQL: e.remoteStatement(ds, q, env), User: env.user})
	if err != nil {
		return nil, err
	}
	if e.PushDown {
		return it, nil
	}
	return central(it, q), nil
}

// shardLabel names one shard's stats counter: "rel:big[shard 2/4]".
func shardLabel(src string, k, of int) string {
	if of <= 1 {
		return src
	}
	return fmt.Sprintf("%s[shard %d/%d]", src, k+1, of)
}

// resolveKind resolves one FROM item to its member store without
// opening a scan — shared by execution and the planner, so EXPLAIN
// reports exactly the access path execution would take. Bare names
// resolve relational, then document, then graph.
func (e *Engine) resolveKind(src string) (kind, name string, err error) {
	kind, name = splitSource(src)
	switch kind {
	case "rel", "doc", "graph", "file":
		return kind, name, nil
	case "":
		if e.Poly.Rel.Has(name) {
			return "rel", name, nil
		}
		for _, coll := range e.Poly.Docs.Collections() {
			if coll == name {
				return "doc", name, nil
			}
		}
		if len(e.Poly.Graph.NodesByLabel(name)) > 0 {
			return "graph", name, nil
		}
		// Not local anywhere: consult the placement helper — a bare
		// dataset name routes to the consistent-hash member that owns
		// it, so callers need not know the topology.
		if e.Locate != nil {
			if m, ok := e.Locate(name); ok {
				if _, exists := e.Remotes[m]; exists {
					return "remote", m + ":" + name, nil
				}
			}
		}
		return "", name, fmt.Errorf("%w: %q", ErrUnknownSource, name)
	default:
		// An unrecognized prefix may name a configured remote member:
		// "east:orders" scans dataset "orders" on member "east" (the
		// dataset part may itself carry a store prefix, forwarded
		// verbatim — "east:rel:orders"). The canonical remote name is
		// "member:dataset" even when the member was ring-located.
		if _, ok := e.Remotes[kind]; ok {
			return "remote", kind + ":" + name, nil
		}
		return "", name, fmt.Errorf("%w: bad prefix %q", ErrUnknownSource, kind)
	}
}

func splitSource(src string) (kind, name string) {
	if i := strings.Index(src, ":"); i > 0 {
		return src[:i], src[i+1:]
	}
	return "", src
}

// central wraps a source scan with the engine-side stages a store
// could not evaluate: predicate filtering, then projection onto the
// requested columns (null-padding the missing ones so union aligns).
func central(it RowIterator, q *Query) RowIterator {
	return Project(Filter(it, q.Where), q.Columns)
}

// relCursorIterator adapts a relational store cursor to the pipeline.
type relCursorIterator struct {
	cur *polystore.Cursor
}

func (r *relCursorIterator) Columns() []string { return r.cur.Columns() }

func (r *relCursorIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	row, ok := r.cur.Next()
	if !ok {
		return nil, io.EOF
	}
	return row, nil
}

func (r *relCursorIterator) Close() error { return r.cur.Close() }

// scanRelational streams a relational table. With pushdown the store
// evaluates compiled predicates and the projection during the scan;
// without it, every row is pulled and filtered centrally.
func (e *Engine) scanRelational(name string, q *Query) (RowIterator, error) {
	its, _, err := e.scanRelationalShards(name, name, q, 1)
	if err != nil {
		return nil, err
	}
	return its[0], nil
}

// scanRelationalShards opens a relational scan as shards range-
// partitioned cursors over one snapshot (one cursor when shards <= 1),
// each wrapped for the pipeline and labeled for stats. Draining all
// shards yields exactly the rows the single-cursor scan would — the
// fan-in just overlaps the ranges in time.
func (e *Engine) scanRelationalShards(src, name string, q *Query, shards int) ([]RowIterator, []string, error) {
	var preds []polystore.CellPredicate
	var proj []string
	if e.PushDown {
		preds = make([]polystore.CellPredicate, len(q.Where))
		for i, p := range q.Where {
			pred := p
			preds[i] = polystore.CellPredicate{Column: p.Column, Match: pred.Matches}
		}
		proj = pushableColumns(name, q, e)
	}
	curs, err := e.Poly.Rel.ScanWhereShards(name, preds, proj, shards)
	if err != nil {
		return nil, nil, err
	}
	its := make([]RowIterator, len(curs))
	labels := make([]string, len(curs))
	for k, cur := range curs {
		var it RowIterator = &relCursorIterator{cur: cur}
		if !e.PushDown {
			it = central(it, q)
		}
		its[k] = it
		labels[k] = shardLabel(src, k, len(curs))
	}
	return its, labels, nil
}

// pushableColumns returns the projection to push into the store: the
// requested columns that exist there. The predicate is pushed
// separately, so its columns need not survive projection.
func pushableColumns(name string, q *Query, e *Engine) []string {
	if len(q.Columns) == 0 {
		return nil // SELECT *
	}
	names, err := e.Poly.Rel.ColumnNames(name)
	if err != nil {
		return nil
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	var cols []string
	for _, c := range q.Columns {
		if have[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// scanDocument streams a document collection: pushable predicates are
// evaluated by the store's Find, the matched documents are flattened
// into rows one Next at a time, and unpushed predicates plus the
// projection run as central stages.
func (e *Engine) scanDocument(name string, q *Query) (RowIterator, error) {
	coll := e.Poly.Docs.Collection(name)
	var docs []docstore.Doc
	if e.PushDown {
		var filters []docstore.Filter
		for _, p := range q.Where {
			f, ok := docFilter(p)
			if !ok {
				// Unpushable predicate: evaluated centrally below.
				continue
			}
			filters = append(filters, f)
		}
		docs = coll.Find(filters...)
	} else {
		docs = coll.All()
	}
	fields := docFields(docs, withPredicateColumns(q))
	it := indexIterator(fields, len(docs), func(i int) Row {
		row := make(Row, len(fields))
		for j, f := range fields {
			if v, ok := docs[i][f]; ok {
				row[j] = fmt.Sprintf("%v", v)
			}
		}
		return row
	})
	return central(it, q), nil
}

// withPredicateColumns returns the projection extended with predicate
// columns (nil for SELECT *), so central predicate evaluation still
// sees the cells it needs.
func withPredicateColumns(q *Query) []string {
	if len(q.Columns) == 0 {
		return nil
	}
	out := append([]string(nil), q.Columns...)
	have := map[string]bool{}
	for _, c := range out {
		have[c] = true
	}
	for _, p := range q.Where {
		if !have[p.Column] {
			have[p.Column] = true
			out = append(out, p.Column)
		}
	}
	return out
}

// docFilter maps a predicate onto a docstore filter.
func docFilter(p Predicate) (docstore.Filter, bool) {
	var op docstore.Op
	switch p.Op {
	case OpEq:
		op = docstore.OpEq
	case OpNe:
		op = docstore.OpNe
	case OpGt:
		op = docstore.OpGt
	case OpGte:
		op = docstore.OpGte
	case OpLt:
		op = docstore.OpLt
	case OpLte:
		op = docstore.OpLte
	default:
		return docstore.Filter{}, false
	}
	var val any = p.Value
	if p.Numeric {
		var f float64
		_, err := fmt.Sscanf(p.Value, "%g", &f)
		if err == nil {
			val = f
		}
	}
	return docstore.Filter{Path: p.Column, Op: op, Value: val}, true
}

// docFields computes the row header for a document scan: the requested
// columns, or the sorted union of the documents' top-level scalar
// fields.
func docFields(docs []docstore.Doc, want []string) []string {
	fieldSet := map[string]bool{}
	if len(want) > 0 {
		for _, c := range want {
			fieldSet[c] = true
		}
	} else {
		for _, d := range docs {
			for k, v := range d {
				if k == "_id" {
					continue
				}
				switch v.(type) {
				case map[string]any, []any:
				default:
					fieldSet[k] = true
				}
			}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}

// scanGraph streams the nodes of one label, flattening id + properties
// into rows on the fly.
func (e *Engine) scanGraph(label string, q *Query) (RowIterator, error) {
	nodes := e.Poly.Graph.NodesByLabel(label)
	fieldSet := map[string]bool{}
	if cols := withPredicateColumns(q); cols != nil {
		for _, c := range cols {
			fieldSet[c] = true
		}
	} else {
		fieldSet["id"] = true
		for _, n := range nodes {
			for k := range n.Props {
				fieldSet[k] = true
			}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	it := indexIterator(fields, len(nodes), func(i int) Row {
		return graphRow(nodes[i], fields)
	})
	return central(it, q), nil
}

func graphRow(n graphstore.Node, fields []string) Row {
	row := make(Row, len(fields))
	for j, f := range fields {
		if f == "id" {
			row[j] = n.ID
			continue
		}
		if v, ok := n.Props[f]; ok {
			row[j] = fmt.Sprintf("%v", v)
		}
	}
	return row
}

// scanFiles streams raw objects under a prefix as (path, size, format)
// rows.
func (e *Engine) scanFiles(prefix string, q *Query) (RowIterator, error) {
	infos := e.Poly.Files.List(prefix)
	it := indexIterator([]string{"path", "size", "format"}, len(infos), func(i int) Row {
		return fileRow(infos[i])
	})
	return central(it, q), nil
}

func fileRow(info filestore.ObjectInfo) Row {
	return Row{info.Path, fmt.Sprintf("%d", info.Size), string(info.Format)}
}
