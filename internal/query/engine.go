package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"golake/internal/storage/docstore"
	"golake/internal/storage/filestore"
	"golake/internal/storage/graphstore"
	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// ErrUnknownSource classifies FROM items that resolve to no member
// store (or carry an unrecognized prefix).
var ErrUnknownSource = errors.New("query: unknown source")

// Engine executes parsed queries over a polystore. Execution is a
// pull-based row-iterator pipeline: per-source scan iterators feed a
// streaming union-merge, with predicates, projection, and LIMIT as
// composable stages — so a LIMIT n query stops pulling from the source
// scans after n rows, and memory stays bounded by one row per stage
// rather than the full federated result.
type Engine struct {
	Poly *polystore.Poly
	// PushDown controls whether selection predicates and projections
	// are evaluated inside the member stores (the optimization
	// Constance and Ontario apply) or centrally after full retrieval.
	// The federated-query benchmark toggles this.
	PushDown bool
	// FanIn configures concurrent fan-in across member stores: with
	// Workers > 1, source scans are opened and drained in parallel
	// behind bounded per-source buffers (ParallelUnion), so a slow
	// member store no longer stalls the whole federated stream. The
	// zero value keeps the sequential union and its deterministic
	// source-concatenation row order.
	FanIn FanInOptions
}

// NewEngine creates an engine with pushdown enabled.
func NewEngine(p *polystore.Poly) *Engine {
	return &Engine{Poly: p, PushDown: true}
}

// ExecuteSQL parses and executes a statement, materializing the full
// result. The context cancels execution between rows.
func (e *Engine) ExecuteSQL(ctx context.Context, sql string) (*table.Table, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q)
}

// StreamSQL parses a statement and opens its streaming execution with
// the engine's configured fan-in.
func (e *Engine) StreamSQL(ctx context.Context, sql string) (RowIterator, error) {
	return e.StreamSQLFanIn(ctx, sql, e.FanIn)
}

// StreamSQLFanIn parses a statement and opens its streaming execution
// with an explicit fan-in configuration (per-query override of the
// engine default).
func (e *Engine) StreamSQLFanIn(ctx context.Context, sql string, opts FanInOptions) (RowIterator, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.StreamFanIn(ctx, q, opts)
}

// Execute runs a query and collects the streamed rows into a table —
// the thin materializing wrapper over Stream that keeps table-shaped
// callers working.
func (e *Engine) Execute(ctx context.Context, q *Query) (*table.Table, error) {
	it, err := e.Stream(ctx, q)
	if err != nil {
		return nil, err
	}
	return Collect(ctx, it)
}

// Stream opens the query's iterator pipeline: one scan iterator per
// source, unioned over the projected columns (missing columns
// null-padded on the fly), capped by LIMIT. Source resolution errors
// surface here, before any rows flow; row-level failures (including
// cancellation) surface from Next.
func (e *Engine) Stream(ctx context.Context, q *Query) (RowIterator, error) {
	return e.StreamFanIn(ctx, q, e.FanIn)
}

// StreamFanIn opens the query's pipeline with an explicit fan-in
// configuration. With Workers > 1 the source scans are both opened and
// drained concurrently (ParallelUnion); otherwise the pipeline is the
// sequential union with its deterministic row order.
func (e *Engine) StreamFanIn(ctx context.Context, q *Query, opts FanInOptions) (RowIterator, error) {
	var sources []RowIterator
	var err error
	if opts.sequential() || len(q.Sources) < 2 {
		sources, err = e.openSources(ctx, q)
	} else {
		sources, err = e.openSourcesParallel(ctx, q, opts.Workers)
	}
	if err != nil {
		return nil, err
	}
	return Limit(ParallelUnion(ctx, sources, q.Columns, opts), q.Limit), nil
}

// openSources resolves and opens every FROM item in order.
func (e *Engine) openSources(ctx context.Context, q *Query) ([]RowIterator, error) {
	sources := make([]RowIterator, 0, len(q.Sources))
	closeAll := func() {
		for _, s := range sources {
			_ = s.Close()
		}
	}
	for _, src := range q.Sources {
		if err := ctx.Err(); err != nil {
			closeAll()
			return nil, err
		}
		it, err := e.streamSource(src, q)
		if err != nil {
			closeAll()
			return nil, err
		}
		sources = append(sources, it)
	}
	return sources, nil
}

// openSourcesParallel opens the source scans concurrently, at most
// workers at a time — member-store snapshots are taken under their
// stores' read locks, so opening is safe to overlap, and a store that
// is slow to open no longer delays the others. On failure every opened
// iterator is closed and the error of the lowest-indexed failing source
// is returned, matching the sequential open's first-error semantics.
func (e *Engine) openSourcesParallel(ctx context.Context, q *Query, workers int) ([]RowIterator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sources := make([]RowIterator, len(q.Sources))
	errs := make([]error, len(q.Sources))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(q.Sources))
	for i, src := range q.Sources {
		go func(i int, src string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sources[i], errs[i] = e.streamSource(src, q)
		}(i, src)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, s := range sources {
				if s != nil {
					_ = s.Close()
				}
			}
			return nil, err
		}
	}
	return sources, nil
}

// streamSource routes one FROM item to its member store's scan
// iterator.
func (e *Engine) streamSource(src string, q *Query) (RowIterator, error) {
	kind, name := splitSource(src)
	switch kind {
	case "rel":
		return e.scanRelational(name, q)
	case "doc":
		return e.scanDocument(name, q)
	case "graph":
		return e.scanGraph(name, q)
	case "file":
		return e.scanFiles(name, q)
	case "":
		// Resolve bare names: relational, then document, then graph.
		if e.Poly.Rel.Has(name) {
			return e.scanRelational(name, q)
		}
		for _, coll := range e.Poly.Docs.Collections() {
			if coll == name {
				return e.scanDocument(name, q)
			}
		}
		if len(e.Poly.Graph.NodesByLabel(name)) > 0 {
			return e.scanGraph(name, q)
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownSource, name)
	default:
		return nil, fmt.Errorf("%w: bad prefix %q", ErrUnknownSource, kind)
	}
}

func splitSource(src string) (kind, name string) {
	if i := strings.Index(src, ":"); i > 0 {
		return src[:i], src[i+1:]
	}
	return "", src
}

// central wraps a source scan with the engine-side stages a store
// could not evaluate: predicate filtering, then projection onto the
// requested columns (null-padding the missing ones so union aligns).
func central(it RowIterator, q *Query) RowIterator {
	return Project(Filter(it, q.Where), q.Columns)
}

// relCursorIterator adapts a relational store cursor to the pipeline.
type relCursorIterator struct {
	cur *polystore.Cursor
}

func (r *relCursorIterator) Columns() []string { return r.cur.Columns() }

func (r *relCursorIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	row, ok := r.cur.Next()
	if !ok {
		return nil, io.EOF
	}
	return row, nil
}

func (r *relCursorIterator) Close() error { return r.cur.Close() }

// scanRelational streams a relational table. With pushdown the store
// evaluates compiled predicates and the projection during the scan;
// without it, every row is pulled and filtered centrally.
func (e *Engine) scanRelational(name string, q *Query) (RowIterator, error) {
	if e.PushDown {
		preds := make([]polystore.CellPredicate, len(q.Where))
		for i, p := range q.Where {
			pred := p
			preds[i] = polystore.CellPredicate{Column: p.Column, Match: pred.Matches}
		}
		cur, err := e.Poly.Rel.ScanWhere(name, preds, pushableColumns(name, q, e))
		if err != nil {
			return nil, err
		}
		return &relCursorIterator{cur: cur}, nil
	}
	cur, err := e.Poly.Rel.ScanWhere(name, nil, nil)
	if err != nil {
		return nil, err
	}
	return central(&relCursorIterator{cur: cur}, q), nil
}

// pushableColumns returns the projection to push into the store: the
// requested columns that exist there. The predicate is pushed
// separately, so its columns need not survive projection.
func pushableColumns(name string, q *Query, e *Engine) []string {
	if len(q.Columns) == 0 {
		return nil // SELECT *
	}
	names, err := e.Poly.Rel.ColumnNames(name)
	if err != nil {
		return nil
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	var cols []string
	for _, c := range q.Columns {
		if have[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// scanDocument streams a document collection: pushable predicates are
// evaluated by the store's Find, the matched documents are flattened
// into rows one Next at a time, and unpushed predicates plus the
// projection run as central stages.
func (e *Engine) scanDocument(name string, q *Query) (RowIterator, error) {
	coll := e.Poly.Docs.Collection(name)
	var docs []docstore.Doc
	if e.PushDown {
		var filters []docstore.Filter
		for _, p := range q.Where {
			f, ok := docFilter(p)
			if !ok {
				// Unpushable predicate: evaluated centrally below.
				continue
			}
			filters = append(filters, f)
		}
		docs = coll.Find(filters...)
	} else {
		docs = coll.All()
	}
	fields := docFields(docs, withPredicateColumns(q))
	it := indexIterator(fields, len(docs), func(i int) Row {
		row := make(Row, len(fields))
		for j, f := range fields {
			if v, ok := docs[i][f]; ok {
				row[j] = fmt.Sprintf("%v", v)
			}
		}
		return row
	})
	return central(it, q), nil
}

// withPredicateColumns returns the projection extended with predicate
// columns (nil for SELECT *), so central predicate evaluation still
// sees the cells it needs.
func withPredicateColumns(q *Query) []string {
	if len(q.Columns) == 0 {
		return nil
	}
	out := append([]string(nil), q.Columns...)
	have := map[string]bool{}
	for _, c := range out {
		have[c] = true
	}
	for _, p := range q.Where {
		if !have[p.Column] {
			have[p.Column] = true
			out = append(out, p.Column)
		}
	}
	return out
}

// docFilter maps a predicate onto a docstore filter.
func docFilter(p Predicate) (docstore.Filter, bool) {
	var op docstore.Op
	switch p.Op {
	case OpEq:
		op = docstore.OpEq
	case OpNe:
		op = docstore.OpNe
	case OpGt:
		op = docstore.OpGt
	case OpGte:
		op = docstore.OpGte
	case OpLt:
		op = docstore.OpLt
	case OpLte:
		op = docstore.OpLte
	default:
		return docstore.Filter{}, false
	}
	var val any = p.Value
	if p.Numeric {
		var f float64
		_, err := fmt.Sscanf(p.Value, "%g", &f)
		if err == nil {
			val = f
		}
	}
	return docstore.Filter{Path: p.Column, Op: op, Value: val}, true
}

// docFields computes the row header for a document scan: the requested
// columns, or the sorted union of the documents' top-level scalar
// fields.
func docFields(docs []docstore.Doc, want []string) []string {
	fieldSet := map[string]bool{}
	if len(want) > 0 {
		for _, c := range want {
			fieldSet[c] = true
		}
	} else {
		for _, d := range docs {
			for k, v := range d {
				if k == "_id" {
					continue
				}
				switch v.(type) {
				case map[string]any, []any:
				default:
					fieldSet[k] = true
				}
			}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}

// scanGraph streams the nodes of one label, flattening id + properties
// into rows on the fly.
func (e *Engine) scanGraph(label string, q *Query) (RowIterator, error) {
	nodes := e.Poly.Graph.NodesByLabel(label)
	fieldSet := map[string]bool{}
	if cols := withPredicateColumns(q); cols != nil {
		for _, c := range cols {
			fieldSet[c] = true
		}
	} else {
		fieldSet["id"] = true
		for _, n := range nodes {
			for k := range n.Props {
				fieldSet[k] = true
			}
		}
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	it := indexIterator(fields, len(nodes), func(i int) Row {
		return graphRow(nodes[i], fields)
	})
	return central(it, q), nil
}

func graphRow(n graphstore.Node, fields []string) Row {
	row := make(Row, len(fields))
	for j, f := range fields {
		if f == "id" {
			row[j] = n.ID
			continue
		}
		if v, ok := n.Props[f]; ok {
			row[j] = fmt.Sprintf("%v", v)
		}
	}
	return row
}

// scanFiles streams raw objects under a prefix as (path, size, format)
// rows.
func (e *Engine) scanFiles(prefix string, q *Query) (RowIterator, error) {
	infos := e.Poly.Files.List(prefix)
	it := indexIterator([]string{"path", "size", "format"}, len(infos), func(i int) Row {
		return fileRow(infos[i])
	})
	return central(it, q), nil
}

func fileRow(info filestore.ObjectInfo) Row {
	return Row{info.Path, fmt.Sprintf("%d", info.Size), string(info.Format)}
}
