package query

import (
	"context"
	"io"
	"strings"
	"testing"
)

func spanNames(spans []Span) map[string]bool {
	m := map[string]bool{}
	for _, s := range spans {
		m[s.Name] = true
	}
	return m
}

// TestParseExplainAnalyze: the ANALYZE verb parses, implies Explain,
// and round-trips through String.
func TestParseExplainAnalyze(t *testing.T) {
	q, err := Parse("EXPLAIN ANALYZE SELECT id FROM rel:orders LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || !q.Analyze {
		t.Errorf("Explain/Analyze = %v/%v, want true/true", q.Explain, q.Analyze)
	}
	const want = "EXPLAIN ANALYZE SELECT id FROM rel:orders LIMIT 3"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	q2, err := Parse("EXPLAIN SELECT id FROM rel:orders")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Analyze {
		t.Error("plain EXPLAIN parsed as ANALYZE")
	}
}

// TestExplainAnalyzeExecutes: EXPLAIN ANALYZE runs the query to
// completion and returns a rowless stream whose plan carries the live
// counters and span timings.
func TestExplainAnalyzeExecutes(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{
		SQL: "EXPLAIN ANALYZE SELECT id, total FROM rel:orders, rel:more_orders ORDER BY total DESC LIMIT 5",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.ExplainOnly() {
		t.Fatal("EXPLAIN ANALYZE stream is not explain-only")
	}
	if _, err := st.Next(ctx); err != io.EOF {
		t.Fatalf("EXPLAIN ANALYZE emitted rows (err=%v)", err)
	}
	a := st.Plan().Analyzed
	if a == nil {
		t.Fatal("Plan().Analyzed is nil")
	}
	if a.RowsOut != 5 {
		t.Errorf("analyzed rows_out = %d, want 5", a.RowsOut)
	}
	var pulled int64
	for _, s := range a.Sources {
		pulled += s.Rows
	}
	if pulled == 0 {
		t.Error("analyzed per-source counters are all zero — the query did not execute")
	}
	names := spanNames(a.Trace)
	for _, want := range []string{"plan", "open-sources", "execute", "sort"} {
		if !names[want] {
			t.Errorf("analyzed trace missing span %q (have %v)", want, a.Trace)
		}
	}
	if a.SortHeapRows == 0 || a.SortHeapRows > 5 {
		t.Errorf("sort heap high-water = %d, want in (0, 5]", a.SortHeapRows)
	}
	// The rendered plan includes the analyzed block.
	if s := st.Plan().String(); !strings.Contains(s, "analyzed: 5 rows out") {
		t.Errorf("plan text missing analyzed block:\n%s", s)
	}
}

// TestRequestAnalyzeOption: Request.Analyze behaves like the SQL verb.
func TestRequestAnalyzeOption(t *testing.T) {
	e := multiSourcePoly(t)
	st, err := e.Query(context.Background(), Request{
		SQL:     "SELECT id FROM rel:orders",
		Analyze: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.ExplainOnly() || st.Plan().Analyzed == nil {
		t.Error("Request.Analyze did not produce an analyzed explain-only stream")
	}
}

// TestTraceSpansOnLiveStream: a normal query's Stats carries the
// build-time spans, the execute span once consumption starts, and the
// sort span when the plan has one.
func TestTraceSpansOnLiveStream(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{
		SQL: "SELECT id, total FROM rel:orders, rel:more_orders ORDER BY total LIMIT 4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(ctx); err != nil {
		t.Fatal(err)
	}
	st.AddSpan("serialize", 42)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names := spanNames(st.Stats().Trace)
	for _, want := range []string{"plan", "open-sources", "serialize", "execute", "sort"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, st.Stats().Trace)
		}
	}
}

// TestStatsWidthIndependence is the regression pin for the sequential
// union's instrumentation: on a full drain, the per-source rows-pulled
// counters are identical at fan-in 1 and fan-in 8, and blocked-time is
// non-zero in both — the sequential path meters its sources with the
// same counters the parallel pullers use.
func TestStatsWidthIndependence(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	const sql = "SELECT id FROM rel:orders, rel:more_orders, doc:events"
	perSource := func(fanIn int) map[string]SourceStats {
		t.Helper()
		st, err := e.Query(ctx, Request{SQL: sql, FanIn: fanIn})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := st.Next(ctx); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		out := map[string]SourceStats{}
		for _, s := range st.Stats().Sources {
			out[s.Source] = s
		}
		return out
	}
	seq, par := perSource(1), perSource(8)
	if len(seq) != 3 || len(par) != 3 {
		t.Fatalf("source count: seq=%d par=%d, want 3", len(seq), len(par))
	}
	for src, ss := range seq {
		ps, ok := par[src]
		if !ok {
			t.Errorf("source %s missing from parallel stats", src)
			continue
		}
		if ss.Rows != ps.Rows {
			t.Errorf("source %s: rows seq=%d par=%d — stats are width-dependent", src, ss.Rows, ps.Rows)
		}
		if ss.Rows > 0 && ss.Blocked == 0 {
			t.Errorf("source %s: sequential blocked-time is zero despite %d rows pulled", src, ss.Rows)
		}
	}
}

// TestRowStreamCloseHooksAndErr: OnClose hooks fire exactly once even
// on double Close, and Err reports the first row-level error.
func TestRowStreamCloseHooksAndErr(t *testing.T) {
	e := multiSourcePoly(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := e.Query(ctx, Request{SQL: "SELECT id FROM rel:orders"})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	st.OnClose(func() { fired++ })
	if _, err := st.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if st.Err() != nil {
		t.Errorf("Err() = %v before any failure", st.Err())
	}
	cancel()
	if _, err := st.Next(ctx); err == nil {
		t.Fatal("expected cancellation error")
	}
	if st.Err() == nil {
		t.Error("Err() did not capture the cancellation")
	}
	st.Close()
	st.Close()
	if fired != 1 {
		t.Errorf("close hook fired %d times, want 1", fired)
	}
}
