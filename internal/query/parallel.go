package query

import (
	"context"
	"io"
	"slices"
	"sync"
)

// DefaultFanInBufferRows is the per-source backpressure window of
// ParallelUnion when FanInOptions.BufferRows is unset: how many rows a
// puller may run ahead of the consumer before it blocks.
const DefaultFanInBufferRows = 256

// fanInBatchRows is how many rows ride one channel hop. Batching
// amortizes the synchronization cost per row and lets the remap/null-pad
// scratch be allocated once per batch instead of once per row.
const fanInBatchRows = 64

// FanInOptions configures how a federated union drains its member
// sources.
type FanInOptions struct {
	// Workers caps how many sources are drained concurrently. 0 and 1
	// select the sequential union (today's ordering-stable behavior);
	// values above the source count are clamped to one puller per
	// source.
	Workers int
	// BufferRows bounds how many rows each source may buffer ahead of
	// the consumer (the backpressure window); the bound is approximate —
	// a puller may additionally hold one partially built batch in hand,
	// overshooting by up to one batch. 0 means DefaultFanInBufferRows.
	BufferRows int
	// Budget, when set, is the query's shared memory budget: rows are
	// charged while they sit in the fan-in queues and released as the
	// consumer dequeues them. A puller whose charge would exceed the
	// budget surfaces ErrBudgetExceeded in-band instead of buffering
	// on. Nil means unlimited.
	Budget *MemBudget
}

// sequential reports whether the options degenerate to the sequential
// union.
func (o FanInOptions) sequential() bool { return o.Workers <= 1 }

// bufferRows resolves the per-source window.
func (o FanInOptions) bufferRows() int {
	if o.BufferRows <= 0 {
		return DefaultFanInBufferRows
	}
	return o.BufferRows
}

// rowBatch is the unit crossing a puller→consumer channel hop: a run of
// already-remapped rows, or the source's terminal state (io.EOF or a
// real error) after its last rows were delivered.
type rowBatch struct {
	rows []Row
	err  error
}

// ParallelUnion merges sources concurrently with bounded buffering: one
// puller goroutine per source (at most opts.Workers running at once)
// drains its source into a per-source channel of row batches, and the
// consumer's Next serves batches in arrival order. Semantics match
// Union except for row order, which is arrival order rather than
// source-concatenation order:
//
//   - Backpressure: a source may run at most BufferRows rows ahead of
//     the consumer; full buffers block the puller, not the consumer.
//   - A slow source never stalls the others — their rows keep flowing
//     while it blocks, so wall-clock tracks the slowest source instead
//     of the sum of sources.
//   - The first source error is propagated in-band from Next (sticky),
//     and stops all pullers.
//   - Close cancels every puller, waits for them to exit, and closes
//     every source exactly as the sequential union does — leak-free
//     even mid-stream.
//
// With Workers <= 1 (or fewer than two sources) it returns the
// sequential Union unchanged, the fanin=1 degenerate case that keeps
// ordering deterministic.
//
// ctx scopes the pullers: it is the stream-open context, and cancelling
// it tears the fan-in down exactly like Close.
func ParallelUnion(ctx context.Context, sources []RowIterator, want []string, opts FanInOptions) RowIterator {
	if len(sources) < 2 || opts.sequential() {
		return Union(sources, want)
	}
	cols := unionColumns(sources, want)
	batchRows := fanInBatchRows
	if w := opts.bufferRows(); w < batchRows {
		batchRows = w
	}
	depth := opts.bufferRows() / batchRows
	if depth < 1 {
		depth = 1
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &parallelUnion{
		cols:   cols,
		pctx:   pctx,
		cancel: cancel,
		budget: opts.Budget,
		queues: make([]chan rowBatch, len(sources)),
		// A token is pushed only after its batch is queued, so tokens
		// never outnumber queued batches and this capacity guarantees
		// pullers never block on ready.
		ready: make(chan int, len(sources)*depth),
	}
	var sem chan struct{}
	if opts.Workers > 0 && opts.Workers < len(sources) {
		sem = make(chan struct{}, opts.Workers)
	}
	p.wg.Add(len(sources))
	for i, src := range sources {
		p.queues[i] = make(chan rowBatch, depth)
		go p.pull(pctx, i, src, sem, batchRows)
	}
	return p
}

// unionColumns computes the union header: want when projecting explicit
// columns, otherwise the union of the source headers in first-seen
// order (shared with the sequential Union).
func unionColumns(sources []RowIterator, want []string) []string {
	cols := want
	if len(cols) == 0 {
		seen := map[string]bool{}
		for _, s := range sources {
			for _, c := range s.Columns() {
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
		}
	}
	return cols
}

// parallelUnion is the consumer half of the concurrent fan-in.
type parallelUnion struct {
	cols []string
	// pctx scopes the pullers: derived from the stream-open context,
	// cancelled by Close and on the first source error. Next watches it
	// so an open-scope cancellation surfaces instead of hanging a
	// consumer whose per-call context is still live.
	pctx   context.Context
	cancel context.CancelFunc
	// budget, when set, holds the charge for rows parked in the
	// queues; pullers acquire before queueing, the consumer releases
	// on dequeue.
	budget *MemBudget
	queues []chan rowBatch
	// ready carries source indexes in batch-arrival order; the consumer
	// blocks here, then pops the announced queue.
	ready chan int
	wg    sync.WaitGroup

	// closeMu guards closeErr, the first source-Close failure seen by
	// any puller (the sequential union's Close reports the same).
	closeMu  sync.Mutex
	closeErr error

	// Consumer-side state (single consumer, no locking needed).
	cur    []Row
	curPos int
	done   int
	err    error
	closed bool
}

// pull drains one source into its queue: acquire a worker slot, batch
// rows (remapped onto the union header), and finish with the source's
// terminal state. The source is closed here, so every source is closed
// exactly once no matter how the stream ends.
func (p *parallelUnion) pull(ctx context.Context, i int, src RowIterator, sem chan struct{}, batchRows int) {
	defer p.wg.Done()
	defer func() {
		if err := src.Close(); err != nil {
			p.closeMu.Lock()
			if p.closeErr == nil {
				p.closeErr = err
			}
			p.closeMu.Unlock()
		}
	}()
	if sem != nil {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-ctx.Done():
			return
		}
	}
	b := newBatcher(src.Columns(), p.cols, batchRows)
	for {
		row, err := src.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				// Torn down by Close/cancel: nobody is reading anymore.
				return
			}
			if rows := b.take(); len(rows) > 0 {
				if !p.sendRows(ctx, i, rows) {
					return
				}
			}
			p.send(ctx, i, rowBatch{err: err})
			return
		}
		b.add(row)
		if b.full() {
			if !p.sendRows(ctx, i, b.take()) {
				return
			}
		}
	}
}

// sendRows charges the batch against the memory budget and queues it;
// an exceeded budget is surfaced in-band as this source's terminal
// error (the consumer makes it sticky and tears the fan-in down).
func (p *parallelUnion) sendRows(ctx context.Context, i int, rows []Row) bool {
	if err := p.budget.Acquire(len(rows)); err != nil {
		p.send(ctx, i, rowBatch{err: err})
		return false
	}
	return p.send(ctx, i, rowBatch{rows: rows})
}

// send queues one batch and announces its arrival; false means the
// stream was torn down and the puller should exit.
func (p *parallelUnion) send(ctx context.Context, i int, b rowBatch) bool {
	select {
	case p.queues[i] <- b:
	case <-ctx.Done():
		return false
	}
	select {
	case p.ready <- i:
		return true
	case <-ctx.Done():
		return false
	}
}

func (p *parallelUnion) Columns() []string { return p.cols }

func (p *parallelUnion) Next(ctx context.Context) (Row, error) {
	// The sticky error outranks closed — a failed stream must keep
	// replaying its error after the contractual Close, exactly like the
	// sequential union, not read as cleanly ended.
	if p.err != nil {
		return nil, p.err
	}
	if p.closed {
		return nil, io.EOF
	}
	// Check the per-call context even while a buffered batch is in hand,
	// so cancellation surfaces on the next row — the sequential union's
	// contract — not after up to a batch of buffered rows.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for {
		if p.curPos < len(p.cur) {
			row := p.cur[p.curPos]
			p.curPos++
			return row, nil
		}
		if p.done == len(p.queues) {
			return nil, io.EOF
		}
		var i int
		select {
		case i = <-p.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.pctx.Done():
			// The stream-open context was cancelled out from under a
			// consumer whose per-call context is still live: pullers are
			// exiting without terminal batches, so waiting on ready would
			// hang forever. Serve anything already announced, then
			// surface the cancellation (sticky).
			select {
			case i = <-p.ready:
			default:
				p.err = p.pctx.Err()
				return nil, p.err
			}
		}
		b := <-p.queues[i]
		// Dequeued rows leave the fan-in buffer: hand their budget
		// charge back (a downstream buffering stage re-charges its own).
		p.budget.Release(len(b.rows))
		if b.err == io.EOF {
			p.done++
			continue
		}
		if b.err != nil {
			// First source error: surface it in-band (sticky) and stop
			// the remaining pullers, which close their sources on the
			// way out.
			p.err = b.err
			p.cancel()
			return nil, b.err
		}
		p.cur, p.curPos = b.rows, 0
	}
}

func (p *parallelUnion) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.cancel()
	p.wg.Wait()
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	return p.closeErr
}

// batcher accumulates remapped rows for one channel hop. The remap
// scratch is one backing cell array per batch: rows are carved out of
// it, so the steady state costs two allocations per batch (~batchRows
// rows) instead of one per row, and null padding is free (fresh backing
// is zero-valued). When the source header already matches the union
// header, rows pass through untouched — zero copies, one allocation
// per batch for the row slice itself.
type batcher struct {
	src      []int // nil when the mapping is the identity
	width    int
	capacity int
	cells    []string
	rows     []Row
}

func newBatcher(from, to []string, capacity int) *batcher {
	b := &batcher{width: len(to), capacity: capacity}
	if !slices.Equal(from, to) {
		b.src = columnMapping(from, to)
	}
	return b
}

func (b *batcher) add(row Row) {
	if b.rows == nil {
		b.rows = make([]Row, 0, b.capacity)
		if b.src != nil {
			b.cells = make([]string, b.capacity*b.width)
		}
	}
	if b.src == nil {
		b.rows = append(b.rows, row)
		return
	}
	out := b.cells[:b.width:b.width]
	b.cells = b.cells[b.width:]
	for i, j := range b.src {
		if j >= 0 {
			out[i] = row[j]
		}
	}
	b.rows = append(b.rows, out)
}

func (b *batcher) full() bool { return len(b.rows) >= b.capacity }

// take hands the accumulated rows over and resets the batch; the next
// add allocates fresh backing, so handed-over rows stay valid for the
// consumer to retain.
func (b *batcher) take() []Row {
	rows := b.rows
	b.rows, b.cells = nil, nil
	return rows
}
