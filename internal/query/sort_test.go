package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// probeSource yields pre-built rows while counting pulls and closes —
// the observability the memory-bound and teardown tests need.
type probeSource struct {
	cols       []string
	rows       [][]string
	pulled     int
	failAfter  int // fail after this many rows when err is set
	err        error
	closed     bool
	closeCount int
}

func (p *probeSource) Columns() []string { return p.cols }

func (p *probeSource) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.err != nil && p.pulled >= p.failAfter {
		return nil, p.err
	}
	if p.pulled >= len(p.rows) {
		return nil, io.EOF
	}
	row := p.rows[p.pulled]
	p.pulled++
	return row, nil
}

func (p *probeSource) Close() error {
	if !p.closed {
		p.closed = true
		p.closeCount++
	}
	return nil
}

func TestSortOrdersRows(t *testing.T) {
	in := NewSliceIterator([]string{"name", "age"}, [][]string{
		{"carol", "41"},
		{"alice", "30"},
		{"bob", "25"},
	})
	got := drain(t, Sort(in, []OrderKey{{Column: "age"}}, 0))
	want := "bob,alice,carol"
	var names []string
	for _, r := range got {
		names = append(names, r[0])
	}
	if strings.Join(names, ",") != want {
		t.Errorf("sorted names = %v, want %s", names, want)
	}
}

func TestSortDescAndSecondaryKey(t *testing.T) {
	in := NewSliceIterator([]string{"city", "price"}, [][]string{
		{"berlin", "10"},
		{"athens", "20"},
		{"madrid", "20"},
		{"paris", "5"},
	})
	got := drain(t, Sort(in, []OrderKey{{Column: "price", Desc: true}, {Column: "city"}}, 0))
	var cities []string
	for _, r := range got {
		cities = append(cities, r[0])
	}
	if strings.Join(cities, ",") != "athens,madrid,berlin,paris" {
		t.Errorf("order = %v", cities)
	}
}

// TestSortMixedNumericAndStringKeys pins the total order on
// heterogeneous cells: numeric cells compare numerically and sort
// before non-numeric ones, so "2" < "10" < "1a" consistently.
func TestSortMixedNumericAndStringKeys(t *testing.T) {
	in := NewSliceIterator([]string{"v"}, [][]string{
		{"1a"}, {"10"}, {"abc"}, {"2"}, {""}, {"-3"},
	})
	got := drain(t, Sort(in, []OrderKey{{Column: "v"}}, 0))
	var vals []string
	for _, r := range got {
		vals = append(vals, r[0])
	}
	if strings.Join(vals, "|") != "-3|2|10||1a|abc" {
		t.Errorf("mixed order = %v", vals)
	}
}

// TestSortDeterministicUnderShuffledInput is the ordering guarantee
// parallel fan-in relies on: any arrival order sorts to byte-identical
// output, including full-row tiebreaks for rows equal under the keys.
func TestSortDeterministicUnderShuffledInput(t *testing.T) {
	base := make([][]string, 0, 100)
	for i := 0; i < 100; i++ {
		base = append(base, []string{fmt.Sprint(i % 7), fmt.Sprintf("p%d", i%13), fmt.Sprint(i)})
	}
	keys := []OrderKey{{Column: "k"}, {Column: "p", Desc: true}}
	var want string
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([][]string(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := drain(t, Sort(NewSliceIterator([]string{"k", "p", "id"}, shuffled), keys, 0))
		var sb strings.Builder
		for _, r := range got {
			sb.WriteString(strings.Join(r, ",") + "\n")
		}
		if trial == 0 {
			want = sb.String()
		} else if sb.String() != want {
			t.Fatalf("trial %d produced different order", trial)
		}
	}
}

// TestSortTopKMemoryBound pins the heap bound via a counting source:
// the sort must pull every input row, yet never hold more than LIMIT
// rows.
func TestSortTopKMemoryBound(t *testing.T) {
	const n, limit = 10000, 7
	src := &probeSource{cols: []string{"v"}, rows: make([][]string, n)}
	for i := range src.rows {
		src.rows[i] = []string{fmt.Sprint((i * 7919) % n)}
	}
	s := Sort(src, []OrderKey{{Column: "v"}}, limit).(*sortIterator)
	got := drain(t, s)
	if len(got) != limit {
		t.Fatalf("emitted %d rows, want %d", len(got), limit)
	}
	for i, r := range got {
		if r[0] != fmt.Sprint(i) {
			t.Errorf("row %d = %v, want %d", i, r, i)
		}
	}
	if src.pulled != n {
		t.Errorf("pulled %d rows from source, want all %d", src.pulled, n)
	}
	if held := s.maxHeld.Load(); held > limit {
		t.Errorf("heap held %d rows, bound is %d", held, limit)
	}
	if !src.closed {
		t.Error("source not closed after drain")
	}
}

// TestSortEarlyCloseReleasesBuffer: closing mid-emission must release
// the buffered rows (no retained backing array) and the input, and
// stay idempotent.
func TestSortEarlyCloseReleasesBuffer(t *testing.T) {
	src := &probeSource{cols: []string{"v"}, rows: [][]string{{"3"}, {"1"}, {"2"}}}
	s := Sort(src, []OrderKey{{Column: "v"}}, 2).(*sortIterator)
	ctx := context.Background()
	if _, err := s.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s.buf != nil {
		t.Error("Close left the sort buffer retained")
	}
	if !src.closed {
		t.Error("Close did not release the input")
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.Next(ctx); err != io.EOF {
		t.Errorf("Next after Close = %v, want EOF", err)
	}
}

// TestSortBufferReleasedOnExhaustion: once the last row is emitted the
// backing array is dropped even without a Close call.
func TestSortBufferReleasedOnExhaustion(t *testing.T) {
	in := NewSliceIterator([]string{"v"}, [][]string{{"2"}, {"1"}})
	s := Sort(in, []OrderKey{{Column: "v"}}, 0).(*sortIterator)
	rows := drain(t, s)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if s.buf != nil {
		t.Error("exhausted sort still retains its buffer")
	}
}

// TestSortPropagatesSourceError: a mid-drain source failure is sticky
// and releases everything.
func TestSortPropagatesSourceError(t *testing.T) {
	boom := errors.New("boom")
	src := &probeSource{cols: []string{"v"}, rows: [][]string{{"1"}, {"2"}}, failAfter: 1, err: boom}
	s := Sort(src, []OrderKey{{Column: "v"}}, 0).(*sortIterator)
	ctx := context.Background()
	if _, err := s.Next(ctx); !errors.Is(err, boom) {
		t.Fatalf("Next = %v, want boom", err)
	}
	if !src.closed {
		t.Error("failed drain did not close the input")
	}
	if _, err := s.Next(ctx); !errors.Is(err, boom) {
		t.Errorf("error not sticky: %v", err)
	}
	if s.buf != nil {
		t.Error("failed sort retains its buffer")
	}
}

// TestSequentialUnionCloseIdempotentWithSort: the sequential union
// under a sort stage closes exactly once per source and tolerates
// repeated Close — the pipeline the sort stage tears down eagerly.
func TestSequentialUnionCloseIdempotentWithSort(t *testing.T) {
	a := &probeSource{cols: []string{"v"}, rows: [][]string{{"2"}}}
	b := &probeSource{cols: []string{"v"}, rows: [][]string{{"1"}}}
	u := Union([]RowIterator{a, b}, nil)
	s := Sort(u, []OrderKey{{Column: "v"}}, 0)
	rows := drain(t, s)
	if len(rows) != 2 || rows[0][0] != "1" {
		t.Fatalf("rows = %v", rows)
	}
	// The sort already closed the union on drain; every further Close —
	// on the stage or the union — must be a no-op.
	for i := 0; i < 2; i++ {
		if err := s.Close(); err != nil {
			t.Errorf("sort Close #%d: %v", i+1, err)
		}
		if err := u.Close(); err != nil {
			t.Errorf("union Close #%d: %v", i+1, err)
		}
	}
	if a.closeCount != 1 || b.closeCount != 1 {
		t.Errorf("source close counts = %d, %d; want 1, 1", a.closeCount, b.closeCount)
	}
}
