package query

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExceeded is the sentinel inside every memory-budget
// overrun. The lake classifies it as lakeerr resource_exhausted, so
// over-budget queries fail fast with a typed error instead of OOMing
// the process.
var ErrBudgetExceeded = errors.New("query: memory budget exceeded")

// MemBudget is one query's memory accounting token: a shared row
// counter threaded into every stage that buffers rows (the fan-in
// queues and the sort heap), charged on buffer growth and released as
// rows leave the buffers. When the combined footprint would cross the
// limit, Acquire fails and the pipeline surfaces the overrun in-band —
// the enforcement is cooperative and approximate (a puller may hold
// one batch in hand beyond its charge), which is fine: the budget
// bounds the O(input) blowup of an unbounded ORDER BY or a stalled
// consumer, not individual rows.
//
// A nil *MemBudget is a valid, unlimited budget; every method is
// nil-safe, so un-budgeted queries pay a single pointer test.
type MemBudget struct {
	limit int64
	used  atomic.Int64
	high  atomic.Int64
}

// NewMemBudget builds a budget of `rows` buffered rows; rows <= 0
// returns nil (unlimited).
func NewMemBudget(rows int) *MemBudget {
	if rows <= 0 {
		return nil
	}
	return &MemBudget{limit: int64(rows)}
}

// Acquire charges n rows against the budget. On overrun the charge is
// rolled back and the returned error wraps ErrBudgetExceeded.
func (b *MemBudget) Acquire(n int) error {
	if b == nil || n <= 0 {
		return nil
	}
	used := b.used.Add(int64(n))
	if used > b.limit {
		b.used.Add(-int64(n))
		return fmt.Errorf("%w: %d buffered rows over the %d-row budget", ErrBudgetExceeded, used, b.limit)
	}
	for {
		h := b.high.Load()
		if used <= h || b.high.CompareAndSwap(h, used) {
			return nil
		}
	}
}

// Release returns n rows to the budget.
func (b *MemBudget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(-int64(n))
}

// Limit reports the budget's row limit (0 for an unlimited nil
// budget).
func (b *MemBudget) Limit() int {
	if b == nil {
		return 0
	}
	return int(b.limit)
}

// HighWater reports the peak number of rows charged at once — the
// query's observed buffered-row footprint.
func (b *MemBudget) HighWater() int64 {
	if b == nil {
		return 0
	}
	return b.high.Load()
}
