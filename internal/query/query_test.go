package query

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"golake/internal/storage/polystore"
	"golake/internal/table"
)

func setupPoly(t *testing.T) *polystore.Poly {
	t.Helper()
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest("raw/orders.csv", []byte("id,status,total\n1,open,10.5\n2,closed,3.0\n3,open,22.0\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest("raw/events.jsonl", []byte("{\"kind\":\"click\",\"n\":1}\n{\"kind\":\"view\",\"n\":2}\n{\"kind\":\"click\",\"n\":3}\n")); err != nil {
		t.Fatal(err)
	}
	graph := []byte(`{"nodes":[
		{"id":"p1","label":"person","props":{"name":"alice","age":30}},
		{"id":"p2","label":"person","props":{"name":"bob","age":25}}],
		"edges":[{"from":"p1","to":"p2","label":"knows"}]}`)
	if _, err := p.IngestAs("raw/people.json", graph, polystore.TargetGraph); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBasics(t *testing.T) {
	q, err := Parse("SELECT a, b FROM rel:orders WHERE status = 'open' AND total >= 10 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 2 || q.Columns[1] != "b" {
		t.Errorf("columns = %v", q.Columns)
	}
	if len(q.Sources) != 1 || q.Sources[0] != "rel:orders" {
		t.Errorf("sources = %v", q.Sources)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %+v", q.Where)
	}
	if q.Where[0].Value != "open" || q.Where[0].Numeric {
		t.Errorf("pred 0 = %+v", q.Where[0])
	}
	if q.Where[1].Op != OpGte || !q.Where[1].Numeric {
		t.Errorf("pred 1 = %+v", q.Where[1])
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT a FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE x ~ 3",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t trailing",
		"SELECT a FROM t WHERE x = 'unterminated",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestExecuteRelationalWithPredicates(t *testing.T) {
	e := NewEngine(setupPoly(t))
	res, err := e.ExecuteSQL(context.Background(), "SELECT id, total FROM rel:orders WHERE status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.NumCols() != 2 {
		t.Fatalf("result = %dx%d\n%s", res.NumRows(), res.NumCols(), tableCSV(res))
	}
	res, err = e.ExecuteSQL(context.Background(), "SELECT * FROM rel:orders WHERE total > 10 AND total < 20")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("numeric range = %d rows", res.NumRows())
	}
}

func TestPushdownEquivalence(t *testing.T) {
	p := setupPoly(t)
	queries := []string{
		"SELECT id, total FROM rel:orders WHERE status = 'open'",
		"SELECT * FROM doc:events WHERE kind = 'click'",
		"SELECT name FROM graph:person WHERE age > 26",
		"SELECT id FROM rel:orders WHERE total <= 10.5 LIMIT 1",
	}
	for _, sql := range queries {
		with := NewEngine(p)
		without := NewEngine(p)
		without.PushDown = false
		a, err := with.ExecuteSQL(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (pushdown): %v", sql, err)
		}
		b, err := without.ExecuteSQL(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (central): %v", sql, err)
		}
		if tableCSV(a) != tableCSV(b) {
			t.Errorf("pushdown changed semantics for %q:\nwith:\n%s\nwithout:\n%s", sql, tableCSV(a), tableCSV(b))
		}
	}
}

func TestExecuteDocument(t *testing.T) {
	e := NewEngine(setupPoly(t))
	res, err := e.ExecuteSQL(context.Background(), "SELECT kind, n FROM doc:events WHERE n >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), tableCSV(res))
	}
}

func TestExecuteGraph(t *testing.T) {
	e := NewEngine(setupPoly(t))
	res, err := e.ExecuteSQL(context.Background(), "SELECT * FROM graph:person")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if !res.HasColumn("id") || !res.HasColumn("name") {
		t.Errorf("columns = %v", res.ColumnNames())
	}
}

func TestExecuteFiles(t *testing.T) {
	e := NewEngine(setupPoly(t))
	res, err := e.ExecuteSQL(context.Background(), "SELECT path, format FROM file:raw/")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), tableCSV(res))
	}
}

func TestUnionAcrossSources(t *testing.T) {
	p := setupPoly(t)
	if _, err := p.Ingest("raw/more_orders.csv", []byte("id,status,total\n9,open,5.0\n")); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)
	res, err := e.ExecuteSQL(context.Background(), "SELECT id, status FROM rel:orders, rel:more_orders WHERE status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("union rows = %d\n%s", res.NumRows(), tableCSV(res))
	}
}

func TestBareSourceResolution(t *testing.T) {
	e := NewEngine(setupPoly(t))
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM orders"); err != nil {
		t.Errorf("bare relational: %v", err)
	}
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM events"); err != nil {
		t.Errorf("bare document: %v", err)
	}
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM person"); err != nil {
		t.Errorf("bare graph: %v", err)
	}
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM ghost"); err == nil {
		t.Error("unknown source should error")
	}
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM bad:orders"); err == nil {
		t.Error("unknown prefix should error")
	}
}

func TestPredicateOnUnprojectedColumn(t *testing.T) {
	// Regression: predicates must work on columns that are not in the
	// SELECT list, for every member store.
	e := NewEngine(setupPoly(t))
	res, err := e.ExecuteSQL(context.Background(), "SELECT kind FROM doc:events WHERE n >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.NumCols() != 1 {
		t.Errorf("doc result = %dx%d\n%s", res.NumRows(), res.NumCols(), tableCSV(res))
	}
	res, err = e.ExecuteSQL(context.Background(), "SELECT name FROM graph:person WHERE age > 26")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0] != "alice" {
		t.Errorf("graph result:\n%s", tableCSV(res))
	}
	res, err = e.ExecuteSQL(context.Background(), "SELECT id FROM rel:orders WHERE status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.NumCols() != 1 {
		t.Errorf("rel result = %dx%d", res.NumRows(), res.NumCols())
	}
}

func TestLimit(t *testing.T) {
	e := NewEngine(setupPoly(t))
	res, err := e.ExecuteSQL(context.Background(), "SELECT * FROM rel:orders LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("limit rows = %d", res.NumRows())
	}
}

func TestPredicateMatchesStringAndNumeric(t *testing.T) {
	p := Predicate{Column: "x", Op: OpGt, Value: "9", Numeric: true}
	if !p.Matches("10") {
		t.Error("numeric 10 > 9 failed")
	}
	if p.Matches("8") {
		t.Error("numeric 8 > 9 passed")
	}
	// String fallback for non-numeric cells.
	if p.Matches("abc") {
		// "abc" > "9" lexicographically -> true actually ('a' > '9').
		// Document the fallback rather than fight it.
		t.Log("string fallback: abc > 9 lexicographically")
	}
	q := Predicate{Column: "x", Op: OpNe, Value: "a"}
	if !q.Matches("b") || q.Matches("a") {
		t.Error("Ne broken")
	}
}

func tableCSV(t *table.Table) string { return table.ToCSV(t) }

// Property: rendering a parsed query and re-parsing yields the same
// structure, for randomized well-formed queries.
func TestParseRenderRoundTrip(t *testing.T) {
	cols := []string{"a", "b", "city", "v"}
	ops := []CmpOp{OpEq, OpNe, OpGt, OpGte, OpLt, OpLte}
	f := func(colIdx, opIdx, valNum uint8, useStar, numeric bool, limit uint8) bool {
		q := &Query{Sources: []string{"rel:t1", "doc:t2"}}
		if !useStar {
			q.Columns = []string{cols[int(colIdx)%len(cols)], "extra"}
		}
		val := fmt.Sprintf("%d", valNum)
		if !numeric {
			val = "tok" + val
		}
		q.Where = []Predicate{{
			Column:  cols[int(colIdx)%len(cols)],
			Op:      ops[int(opIdx)%len(ops)],
			Value:   val,
			Numeric: numeric,
		}}
		q.Limit = int(limit)
		back, err := Parse(q.String())
		if err != nil {
			t.Logf("render: %q err: %v", q.String(), err)
			return false
		}
		if len(back.Columns) != len(q.Columns) || len(back.Sources) != 2 || back.Limit != q.Limit {
			return false
		}
		if len(back.Where) != 1 {
			return false
		}
		p0, p1 := q.Where[0], back.Where[0]
		return p0.Column == p1.Column && p0.Op == p1.Op && p0.Value == p1.Value && p0.Numeric == p1.Numeric
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestErrorSentinels(t *testing.T) {
	e := NewEngine(setupPoly(t))
	if _, err := Parse("SELEKT a FROM t"); !errors.Is(err, ErrSyntax) {
		t.Errorf("parse error = %v, want ErrSyntax", err)
	}
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM ghost"); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("unknown source = %v, want ErrUnknownSource", err)
	}
	if _, err := e.ExecuteSQL(context.Background(), "SELECT * FROM bad:orders"); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("unknown prefix = %v, want ErrUnknownSource", err)
	}
}

func TestExecuteCanceled(t *testing.T) {
	e := NewEngine(setupPoly(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteSQL(ctx, "SELECT * FROM rel:orders"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled execute = %v", err)
	}
}
