package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseOrderBy(t *testing.T) {
	q, err := Parse("SELECT a, b FROM rel:t WHERE a > 1 ORDER BY b DESC, a ASC, c LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	want := []OrderKey{{Column: "b", Desc: true}, {Column: "a"}, {Column: "c"}}
	if len(q.Order) != 3 {
		t.Fatalf("order = %+v", q.Order)
	}
	for i, k := range want {
		if q.Order[i] != k {
			t.Errorf("order[%d] = %+v, want %+v", i, q.Order[i], k)
		}
	}
	if q.Limit != 4 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseExplain(t *testing.T) {
	q, err := Parse("EXPLAIN SELECT * FROM rel:t")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Error("Explain not set")
	}
	if got := q.String(); !strings.HasPrefix(got, "EXPLAIN SELECT") {
		t.Errorf("String() = %q", got)
	}
	back, err := Parse(q.String())
	if err != nil || !back.Explain {
		t.Errorf("round-trip explain = %+v (%v)", back, err)
	}
}

func TestParseOrderByErrors(t *testing.T) {
	for _, s := range []string{
		"SELECT a FROM t ORDER",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t ORDER BY ,",
		"SELECT a FROM t ORDER BY a,",
	} {
		if _, err := Parse(s); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want syntax error", s, err)
		}
	}
}

// TestParseQuoteEscaping pins the tokenizer's ” escape: values
// containing quotes survive parse → render → parse.
func TestParseQuoteEscaping(t *testing.T) {
	q, err := Parse("SELECT * FROM rel:t WHERE name = 'o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Value != "o'brien" || q.Where[0].Numeric {
		t.Fatalf("pred = %+v", q.Where[0])
	}
	back, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if back.Where[0] != q.Where[0] {
		t.Errorf("round-trip pred = %+v, want %+v", back.Where[0], q.Where[0])
	}
}

// TestParseQuotedNumericStaysString: '10' is a string predicate, 10 a
// numeric one, and both survive the round-trip unchanged.
func TestParseQuotedNumericStaysString(t *testing.T) {
	q, err := Parse("SELECT * FROM rel:t WHERE a = '10' AND b = 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Numeric || q.Where[0].Value != "10" {
		t.Fatalf("quoted pred = %+v", q.Where[0])
	}
	if !q.Where[1].Numeric || q.Where[1].Value != "10" {
		t.Fatalf("bare pred = %+v", q.Where[1])
	}
	back, err := Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Where[0].Numeric || !back.Where[1].Numeric {
		t.Errorf("round-trip lost quoting: %+v", back.Where)
	}
}

// TestParseRenderRoundTripHostileValues property-tests the round-trip
// over values containing quotes, numeric-looking strings, and ORDER BY
// clauses — the ambiguities the escaping rework exists to remove.
func TestParseRenderRoundTripHostileValues(t *testing.T) {
	vals := []string{"o'brien", "10", "''", "a'b'c", "3.5x", "-2", "it''s", "'"}
	f := func(valIdx, opIdx uint8, quoted, desc bool, limit uint8) bool {
		ops := []CmpOp{OpEq, OpNe, OpGt, OpGte, OpLt, OpLte}
		val := vals[int(valIdx)%len(vals)]
		pred := Predicate{Column: "c", Op: ops[int(opIdx)%len(ops)], Value: val}
		if !quoted {
			// Unquoted values are only representable when numeric.
			if _, err := fmt.Sscanf(val, "%f", new(float64)); err == nil && !strings.ContainsAny(val, "'x") {
				pred.Numeric = true
			}
		}
		q := &Query{
			Columns: []string{"c", "d"},
			Sources: []string{"rel:t"},
			Where:   []Predicate{pred},
			Order:   []OrderKey{{Column: "c", Desc: desc}},
			Limit:   int(limit),
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Logf("render %q: %v", q.String(), err)
			return false
		}
		if len(back.Where) != 1 || back.Where[0] != q.Where[0] {
			t.Logf("pred %+v -> %q -> %+v", q.Where[0], q.String(), back.Where)
			return false
		}
		if len(back.Order) != 1 || back.Order[0] != q.Order[0] || back.Limit != q.Limit {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// collectCSV renders a stream as CSV text for byte-identity checks.
func collectCSV(t *testing.T, it RowIterator) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(strings.Join(it.Columns(), ",") + "\n")
	ctx := context.Background()
	for {
		row, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(strings.Join(row, ",") + "\n")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// multiSourcePoly builds a three-store fixture with overlapping
// columns for federated ordering tests.
func multiSourcePoly(t *testing.T) *Engine {
	t.Helper()
	p := setupPoly(t)
	var csv strings.Builder
	csv.WriteString("id,status,total\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&csv, "m%d,open,%d.5\n", i, (i*37)%101)
	}
	if _, err := p.Ingest("raw/more_orders.csv", []byte(csv.String())); err != nil {
		t.Fatal(err)
	}
	return NewEngine(p)
}

// TestOrderByDeterministicAcrossFanInWidths is the acceptance pin: an
// ORDER BY query returns byte-identical output at fan-in 1, 2, 4 and 8
// (run under -race in CI).
func TestOrderByDeterministicAcrossFanInWidths(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	const sql = "SELECT id, total FROM rel:orders, rel:more_orders, doc:events ORDER BY total DESC, id LIMIT 50"
	var want string
	for _, w := range []int{1, 2, 4, 8} {
		st, err := e.Query(ctx, Request{SQL: sql, FanIn: w})
		if err != nil {
			t.Fatalf("fanin=%d: %v", w, err)
		}
		got := collectCSV(t, st)
		if w == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("fanin=%d output differs from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestEngineQueryDefaultsFanInOn: a zero-value Request fans in at the
// CPU-wide default; FanIn: 1 selects the sequential plan.
func TestEngineQueryDefaultsFanInOn(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{SQL: "SELECT id FROM rel:orders, rel:more_orders"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wantW := DefaultFanIn()
	if wantW > 2 {
		wantW = 2 // clamped to the source count
	}
	if got := st.Plan().FanIn; got != wantW {
		t.Errorf("default plan fan-in = %d, want %d", got, wantW)
	}
	seq, err := e.Query(ctx, Request{SQL: "SELECT id FROM rel:orders, rel:more_orders", FanIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if got := seq.Plan().FanIn; got != 1 {
		t.Errorf("FanIn:1 plan fan-in = %d, want 1", got)
	}
}

// TestEngineQueryRequestOptionsCompose: request Order overrides the
// statement, the stricter Limit wins, and the plan reflects both.
func TestEngineQueryRequestOptionsCompose(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{
		SQL:   "SELECT id, total FROM rel:more_orders ORDER BY id LIMIT 100",
		Order: []OrderKey{{Column: "total", Desc: true}},
		Limit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, st)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (stricter limit)", len(rows))
	}
	prev := rows[0][1]
	for _, r := range rows[1:] {
		if compareCells(r[1], prev) > 0 {
			t.Errorf("request order override not applied: %v", rows)
		}
		prev = r[1]
	}
	if st.Plan().Sort != "top-k heap (k=3)" {
		t.Errorf("plan sort = %q", st.Plan().Sort)
	}
}

// TestEngineQueryStats: per-source counters report the rows pulled
// from each member store.
func TestEngineQueryStats(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{SQL: "SELECT id FROM rel:orders, rel:more_orders", FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, st)
	if len(rows) != 203 {
		t.Fatalf("rows = %d", len(rows))
	}
	es := st.Stats()
	if es.RowsOut != 203 {
		t.Errorf("rows_out = %d", es.RowsOut)
	}
	if len(es.Sources) != 2 {
		t.Fatalf("sources = %+v", es.Sources)
	}
	bySrc := map[string]int64{}
	for _, s := range es.Sources {
		bySrc[s.Source] = s.Rows
	}
	if bySrc["rel:orders"] != 3 || bySrc["rel:more_orders"] != 200 {
		t.Errorf("per-source rows = %v", bySrc)
	}
}

// TestExplainGolden pins the typed plan and its rendering for a
// representative federated query (fan-in pinned so the golden text is
// machine-independent).
func TestExplainGolden(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{
		SQL:   "EXPLAIN SELECT id, total FROM rel:orders, doc:events WHERE total > 10 ORDER BY total DESC LIMIT 5",
		FanIn: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.ExplainOnly() {
		t.Fatal("EXPLAIN stream not marked explain-only")
	}
	if rows := drain(t, st); len(rows) != 0 {
		t.Fatalf("EXPLAIN returned rows: %v", rows)
	}
	golden := strings.Join([]string{
		"EXPLAIN SELECT id, total FROM rel:orders, doc:events WHERE total > 10 ORDER BY total DESC LIMIT 5",
		"  union: parallel fan-in 2 (buffer 256 rows/source)",
		"  batch: row (source without batch scan)",
		"  sort: top-k heap (k=5) [total DESC]",
		"  limit: 5",
		"  source rel:orders: rel scan, table orders, pushdown [total > 10], project [id, total]",
		"  source doc:events: doc scan, collection events, pushdown [total > 10]",
		"",
	}, "\n")
	if got := st.Plan().String(); got != golden {
		t.Errorf("plan rendering:\n%s\nwant:\n%s", got, golden)
	}
}

// TestExplainWithoutPushdown: the central-evaluation plan advertises no
// pushed predicates.
func TestExplainWithoutPushdown(t *testing.T) {
	e := multiSourcePoly(t)
	e.PushDown = false
	st, err := e.Query(context.Background(), Request{
		SQL: "EXPLAIN SELECT id FROM rel:orders WHERE total > 10",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.Plan().Sources[0].Pushdown) != 0 {
		t.Errorf("pushdown advertised with PushDown off: %+v", st.Plan().Sources[0])
	}
}

// TestExplainUnknownSourceErrors: planning resolves sources, so
// EXPLAIN of a missing table fails like execution would.
func TestExplainUnknownSourceErrors(t *testing.T) {
	e := multiSourcePoly(t)
	if _, err := e.Query(context.Background(), Request{SQL: "EXPLAIN SELECT * FROM ghost"}); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("explain unknown source = %v", err)
	}
}

// TestLegacyShimsStillOrder: the deprecated Stream path executes a
// statement-level ORDER BY too — parse once, sort everywhere.
func TestLegacyShimsStillOrder(t *testing.T) {
	e := multiSourcePoly(t)
	it, err := e.StreamSQL(context.Background(), "SELECT id, total FROM rel:more_orders ORDER BY total DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, it)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	res, err := e.ExecuteSQL(context.Background(), "SELECT id, total FROM rel:more_orders ORDER BY total DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.Row(0)[0] != rows[0][0] {
		t.Errorf("Execute order disagrees with Stream: %v vs %v", res.Row(0), rows[0])
	}
}

// TestOrderByUnprojectedColumnErrors: a sort key absent from the
// result header is an invalid query — both at execution and in the
// EXPLAIN plan — never a silently wrong order.
func TestOrderByUnprojectedColumnErrors(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	for _, sql := range []string{
		"SELECT id FROM rel:more_orders ORDER BY total",
		"EXPLAIN SELECT id FROM rel:more_orders ORDER BY total",
	} {
		if _, err := e.Query(ctx, Request{SQL: sql}); !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: err = %v, want ErrSyntax", sql, err)
		}
	}
	// A request-level override is validated the same way.
	if _, err := e.Query(ctx, Request{
		SQL:   "SELECT id FROM rel:more_orders",
		Order: []OrderKey{{Column: "total"}},
	}); !errors.Is(err, ErrSyntax) {
		t.Errorf("request order override: err = %v, want ErrSyntax", err)
	}
	// SELECT * carries every source column, so the key resolves.
	st, err := e.Query(ctx, Request{SQL: "SELECT * FROM rel:more_orders ORDER BY total LIMIT 1"})
	if err != nil {
		t.Fatalf("SELECT * ORDER BY: %v", err)
	}
	st.Close()
	// EXPLAIN resolves SELECT * headers from the stores, so it rejects
	// (and accepts) exactly what execution would.
	if _, err := e.Query(ctx, Request{SQL: "EXPLAIN SELECT * FROM rel:more_orders ORDER BY nosuchcol"}); !errors.Is(err, ErrSyntax) {
		t.Errorf("EXPLAIN SELECT * bad key: err = %v, want ErrSyntax", err)
	}
	ex, err := e.Query(ctx, Request{SQL: "EXPLAIN SELECT * FROM rel:more_orders, doc:events ORDER BY total"})
	if err != nil {
		t.Fatalf("EXPLAIN SELECT * good key: %v", err)
	}
	ex.Close()
}

// TestExplainRejectedOnEngineRowEndpoints: the deprecated row-shaped
// engine entry points refuse EXPLAIN instead of silently executing the
// underlying SELECT (pre-Request, EXPLAIN was a parse error here).
func TestExplainRejectedOnEngineRowEndpoints(t *testing.T) {
	e := multiSourcePoly(t)
	ctx := context.Background()
	const sql = "EXPLAIN SELECT id FROM rel:more_orders"
	if _, err := e.ExecuteSQL(ctx, sql); !errors.Is(err, ErrSyntax) {
		t.Errorf("ExecuteSQL explain = %v, want ErrSyntax", err)
	}
	if _, err := e.StreamSQL(ctx, sql); !errors.Is(err, ErrSyntax) {
		t.Errorf("StreamSQL explain = %v, want ErrSyntax", err)
	}
}

// TestSortHonorsCancellationMidEmission: cancelling between rows stops
// a sorted stream even though the buffer is already filled.
func TestSortHonorsCancellationMidEmission(t *testing.T) {
	in := NewSliceIterator([]string{"v"}, [][]string{{"3"}, {"1"}, {"2"}})
	s := Sort(in, []OrderKey{{Column: "v"}}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := s.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := s.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Next after cancel = %v, want canceled", err)
	}
}

// TestCombineLimit pins the stricter-cap composition.
func TestCombineLimit(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {5, 0, 5}, {0, 5, 5}, {3, 5, 3}, {5, 3, 3},
	}
	for _, c := range cases {
		if got := CombineLimit(c.a, c.b); got != c.want {
			t.Errorf("CombineLimit(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
