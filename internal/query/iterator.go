package query

import (
	"context"
	"io"

	"golake/internal/table"
)

// Row is one result record; cells are ordered like the producing
// iterator's Columns.
type Row = []string

// RowIterator is the pull-based unit of query execution: every engine
// stage (scan, filter, project, union, limit) implements it, so a
// federated query holds O(1) rows resident instead of materializing
// every member-store result before the first row reaches the caller.
//
// Next returns io.EOF after the last row; any other error terminates
// the stream. Iterators are single-consumer and not safe for
// concurrent use. Callers must Close the iterator when done (also
// after an error), releasing per-source scan state; Close is
// idempotent.
type RowIterator interface {
	// Columns is the output header, fixed for the iterator's lifetime.
	Columns() []string
	// Next returns the next row or io.EOF. The context is checked
	// between rows, so cancellation takes effect mid-stream, not just
	// between sources.
	Next(ctx context.Context) (Row, error)
	// Close releases the iterator's resources.
	Close() error
}

// sliceIterator yields pre-materialized rows.
type sliceIterator struct {
	cols []string
	rows [][]string
	pos  int
}

// NewSliceIterator returns an iterator over already-materialized rows.
func NewSliceIterator(cols []string, rows [][]string) RowIterator {
	return &sliceIterator{cols: cols, rows: rows}
}

func (s *sliceIterator) Columns() []string { return s.cols }

func (s *sliceIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *sliceIterator) Close() error {
	s.rows = nil
	return nil
}

// funcIterator adapts a pull function (plus optional cleanup) to the
// interface; the engine's lazy source flatteners use it.
type funcIterator struct {
	cols   []string
	next   func(ctx context.Context) (Row, error)
	close  func() error
	closed bool
}

func (f *funcIterator) Columns() []string { return f.cols }

func (f *funcIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.closed {
		return nil, io.EOF
	}
	return f.next(ctx)
}

func (f *funcIterator) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.close != nil {
		return f.close()
	}
	return nil
}

// indexIterator walks n positions, building each row lazily via rowAt
// — the shared skeleton of the engine's snapshot-backed source
// flatteners (documents, graph nodes, file listings).
func indexIterator(cols []string, n int, rowAt func(int) Row) RowIterator {
	i := 0
	return &funcIterator{
		cols: cols,
		next: func(context.Context) (Row, error) {
			if i >= n {
				return nil, io.EOF
			}
			row := rowAt(i)
			i++
			return row, nil
		},
	}
}

// filterIterator applies conjunctive predicates centrally (the path
// for stores that cannot evaluate them).
type filterIterator struct {
	in    RowIterator
	preds []Predicate
	// colIdx resolves predicate columns against the input header once.
	colIdx map[string]int
}

// Filter wraps an iterator with central predicate evaluation. A
// predicate naming a column the input lacks matches nothing, mirroring
// the materialized engine's semantics.
func Filter(in RowIterator, preds []Predicate) RowIterator {
	if len(preds) == 0 {
		return in
	}
	idx := make(map[string]int, len(in.Columns()))
	for i, c := range in.Columns() {
		idx[c] = i
	}
	return &filterIterator{in: in, preds: preds, colIdx: idx}
}

func (f *filterIterator) Columns() []string { return f.in.Columns() }

func (f *filterIterator) Next(ctx context.Context) (Row, error) {
	for {
		row, err := f.in.Next(ctx)
		if err != nil {
			return nil, err
		}
		if f.matches(row) {
			return row, nil
		}
	}
}

func (f *filterIterator) matches(row Row) bool {
	for _, p := range f.preds {
		j, ok := f.colIdx[p.Column]
		if !ok || !p.Matches(row[j]) {
			return false
		}
	}
	return true
}

func (f *filterIterator) Close() error { return f.in.Close() }

// projectIterator reorders rows onto a target header, null-padding
// requested-but-missing columns so heterogeneous sources union
// cleanly.
type projectIterator struct {
	in   RowIterator
	cols []string
	// src[i] is the input index feeding output column i, or -1 for a
	// null pad.
	src []int
}

// Project wraps an iterator with a projection onto cols (reordering,
// dropping extras, null-padding missing columns). Empty cols means
// SELECT * — the input passes through unchanged.
func Project(in RowIterator, cols []string) RowIterator {
	if len(cols) == 0 {
		return in
	}
	return &projectIterator{in: in, cols: cols, src: columnMapping(in.Columns(), cols)}
}

// columnMapping maps each target column onto its index in from, -1
// when absent.
func columnMapping(from, to []string) []int {
	idx := make(map[string]int, len(from))
	for i, c := range from {
		idx[c] = i
	}
	src := make([]int, len(to))
	for i, c := range to {
		if j, ok := idx[c]; ok {
			src[i] = j
		} else {
			src[i] = -1
		}
	}
	return src
}

func remap(row Row, src []int) Row {
	out := make(Row, len(src))
	for i, j := range src {
		if j >= 0 {
			out[i] = row[j]
		}
	}
	return out
}

func (p *projectIterator) Columns() []string { return p.cols }

func (p *projectIterator) Next(ctx context.Context) (Row, error) {
	row, err := p.in.Next(ctx)
	if err != nil {
		return nil, err
	}
	return remap(row, p.src), nil
}

func (p *projectIterator) Close() error { return p.in.Close() }

// limitIterator stops pulling from its input after n rows — LIMIT as a
// stage, so upstream scans short-circuit instead of being truncated
// after a full merge.
type limitIterator struct {
	in   RowIterator
	left int
	done bool
}

// Limit caps the stream at n rows; n <= 0 means unlimited. Once the
// cap is reached the input is closed eagerly, releasing source scans
// before the consumer calls Close.
func Limit(in RowIterator, n int) RowIterator {
	if n <= 0 {
		return in
	}
	return &limitIterator{in: in, left: n}
}

func (l *limitIterator) Columns() []string { return l.in.Columns() }

func (l *limitIterator) Next(ctx context.Context) (Row, error) {
	if l.done {
		return nil, io.EOF
	}
	row, err := l.in.Next(ctx)
	if err != nil {
		return nil, err
	}
	l.left--
	if l.left == 0 {
		l.done = true
		_ = l.in.Close()
	}
	return row, nil
}

func (l *limitIterator) Close() error {
	l.done = true
	return l.in.Close()
}

// unionIterator concatenates source streams, remapping each source's
// header onto the union header on the fly.
type unionIterator struct {
	cols    []string
	sources []RowIterator
	// src is the column mapping of the current source, rebuilt on
	// advance.
	src    []int
	cur    int
	closed bool
	// err is the sticky mid-stream failure: once a source errors, every
	// remaining source is closed eagerly and later Next calls replay the
	// error instead of pulling from a half-torn-down stream.
	err error
}

// Union merges sources by concatenation over a shared header: want
// when projecting explicit columns, otherwise the union of the source
// headers in first-seen order (the materialized engine's SELECT *
// semantics). Rows are padded per source as they are pulled; nothing
// is buffered.
func Union(sources []RowIterator, want []string) RowIterator {
	u := &unionIterator{cols: unionColumns(sources, want), sources: sources}
	if len(sources) > 0 {
		u.src = columnMapping(sources[0].Columns(), u.cols)
	}
	return u
}

func (u *unionIterator) Columns() []string { return u.cols }

func (u *unionIterator) Next(ctx context.Context) (Row, error) {
	if u.err != nil {
		return nil, u.err
	}
	if u.closed {
		return nil, io.EOF
	}
	for u.cur < len(u.sources) {
		row, err := u.sources[u.cur].Next(ctx)
		if err == io.EOF {
			_ = u.sources[u.cur].Close()
			u.cur++
			if u.cur < len(u.sources) {
				u.src = columnMapping(u.sources[u.cur].Columns(), u.cols)
			}
			continue
		}
		if err != nil {
			// Per-call context cancellation is transient, not a source
			// failure: surface it without tearing the stream down, so a
			// later Next with a live context resumes. Gated on the
			// caller's context — not the error value — so a source's own
			// internal timeout still counts as a terminal failure,
			// exactly as the parallel pullers classify it.
			if ctx.Err() != nil {
				return nil, err
			}
			// Mid-stream failure: release every remaining source scan —
			// including not-yet-reached ones — right away instead of
			// relying on the caller's Close, and replay the error on
			// later Next calls.
			u.err = err
			_ = u.Close()
			return nil, err
		}
		return remap(row, u.src), nil
	}
	return nil, io.EOF
}

func (u *unionIterator) Close() error {
	if u.closed {
		return nil
	}
	u.closed = true
	var first error
	for ; u.cur < len(u.sources); u.cur++ {
		if err := u.sources[u.cur].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Collect drains an iterator into a materialized table named "result"
// (column types inferred), closing it afterwards — the bridge that
// keeps materialized callers working on top of the streaming pipeline.
func Collect(ctx context.Context, it RowIterator) (*table.Table, error) {
	// A stream with a columnar face drains column-wise: whole vector
	// runs are appended per batch instead of one cell at a time.
	if bs, ok := it.(batchSource); ok && bs.BatchOutput() {
		return collectBatchSource(ctx, bs)
	}
	defer it.Close()
	out := table.New("result")
	for _, c := range it.Columns() {
		out.Columns = append(out.Columns, &table.Column{Name: c})
	}
	for {
		row, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for j, v := range row {
			out.Columns[j].Cells = append(out.Columns[j].Cells, v)
		}
	}
	out.InferTypes()
	return out, nil
}
