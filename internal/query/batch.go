package query

import (
	"context"
	"io"
	"sync/atomic"
	"time"

	"golake/internal/table"
)

// DefaultBatchRows is the row capacity of one pipeline batch when
// neither the request nor the engine configures one. ~1024 rows keeps
// a batch of a few columns inside the L2 cache while amortizing the
// per-batch stage dispatch over enough rows that it disappears from
// profiles.
const DefaultBatchRows = 1024

// Batch is the columnar unit of vectorized execution: a header, one
// typed Vector per column, and an optional selection. All vectors have
// the same physical length; Sel, when non-nil, lists the physical row
// indexes that are logically present (what a vectorized filter
// produces — no row is copied to drop a row). Stages hand whole
// batches downstream, so the per-row interface dispatch and per-row
// allocations of the row pipeline are paid once per ~1024 rows
// instead of once per row.
type Batch struct {
	cols []string
	vecs []*Vector
	// n is the physical row count of the vectors.
	n int
	// sel is the selection: physical row indexes in logical order, or
	// nil when every physical row is selected.
	sel []int
}

// NewBatch builds a batch over vectors (one per column, equal
// lengths). The slices are referenced, not copied.
func NewBatch(cols []string, vecs []*Vector) *Batch {
	n := 0
	if len(vecs) > 0 {
		n = vecs[0].Len()
	}
	return &Batch{cols: cols, vecs: vecs, n: n}
}

// Columns is the batch header.
func (b *Batch) Columns() []string { return b.cols }

// Len returns the logical (selected) row count.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Vector returns column j's vector.
func (b *Batch) Vector(j int) *Vector { return b.vecs[j] }

// Sel returns the selection (nil = all physical rows).
func (b *Batch) Sel() []int { return b.sel }

// rowIndex maps logical row i onto its physical index.
func (b *Batch) rowIndex(i int) int {
	if b.sel != nil {
		return b.sel[i]
	}
	return i
}

// Cell returns logical row i of column j in wire form.
func (b *Batch) Cell(i, j int) string { return b.vecs[j].Cell(b.rowIndex(i)) }

// Row materializes logical row i — the bridge to row-shaped consumers.
func (b *Batch) Row(i int) Row {
	row := make(Row, len(b.vecs))
	b.CopyRow(row, i)
	return row
}

// CopyRow writes logical row i into dst (len >= column count) without
// allocating — serialization reuses one scratch row across a stream.
func (b *Batch) CopyRow(dst Row, i int) {
	p := b.rowIndex(i)
	for j, v := range b.vecs {
		dst[j] = v.Cell(p)
	}
}

// BatchIterator is the columnar counterpart of RowIterator: every
// vectorized stage implements it, moving one Batch per Next instead of
// one row. Next returns io.EOF after the last batch and never returns
// an empty batch; any other error terminates the stream. Iterators are
// single-consumer; Close is idempotent and must be called when done.
type BatchIterator interface {
	// Columns is the output header, fixed for the iterator's lifetime.
	Columns() []string
	// Next returns the next non-empty batch or io.EOF. The context is
	// checked between batches, so cancellation takes effect mid-stream.
	Next(ctx context.Context) (*Batch, error)
	// Close releases the iterator's resources.
	Close() error
}

// rowsIterator adapts a batch stream back to the row interface — the
// sink-side adapter that keeps every row-shaped consumer working on
// top of a vectorized pipeline.
type rowsIterator struct {
	in     BatchIterator
	b      *Batch
	pos    int
	closed bool
}

// Rows adapts a BatchIterator to a RowIterator: one materialized row
// per Next, pulled batch-by-batch underneath.
func Rows(in BatchIterator) RowIterator {
	return &rowsIterator{in: in}
}

func (r *rowsIterator) Columns() []string { return r.in.Columns() }

func (r *rowsIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.closed {
		return nil, io.EOF
	}
	for r.b == nil || r.pos >= r.b.Len() {
		b, err := r.in.Next(ctx)
		if err != nil {
			return nil, err
		}
		r.b, r.pos = b, 0
	}
	row := r.b.Row(r.pos)
	r.pos++
	return row, nil
}

func (r *rowsIterator) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.b = nil
	return r.in.Close()
}

// batchesIterator adapts a row stream to the batch interface — the
// source-side adapter that lets row-oriented sources participate in a
// vectorized pipeline.
type batchesIterator struct {
	in     RowIterator
	rows   int
	closed bool
}

// Batches adapts a RowIterator to a BatchIterator, accumulating up to
// rows rows per batch (DefaultBatchRows when rows <= 0) and inferring
// each column's kind per batch via the table package's tolerant
// inference.
func Batches(in RowIterator, rows int) BatchIterator {
	if rows <= 0 {
		rows = DefaultBatchRows
	}
	return &batchesIterator{in: in, rows: rows}
}

func (b *batchesIterator) Columns() []string { return b.in.Columns() }

func (b *batchesIterator) Next(ctx context.Context) (*Batch, error) {
	if b.closed {
		return nil, io.EOF
	}
	cols := b.in.Columns()
	var cells [][]string
	n := 0
	for n < b.rows {
		row, err := b.in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			if n > 0 && ctx.Err() != nil {
				// Transient cancellation: the accumulated rows would be
				// lost if surfaced now. Per the batch contract an error
				// terminates the stream, so hand the partial batch back
				// and let the next call surface the cancellation.
				break
			}
			return nil, err
		}
		if cells == nil {
			cells = make([][]string, len(cols))
		}
		for j, v := range row {
			cells[j] = append(cells[j], v)
		}
		n++
	}
	if n == 0 {
		return nil, io.EOF
	}
	vecs := make([]*Vector, len(cols))
	for j := range vecs {
		vecs[j] = NewVector(table.InferKind(cells[j]), cells[j])
	}
	return NewBatch(cols, vecs), nil
}

func (b *batchesIterator) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	return b.in.Close()
}

// batchSource is how row-shaped entry points discover that a stream
// can also be drained columnar (RowStream implements it when the
// engine picked the batch pipeline).
type batchSource interface {
	BatchOutput() bool
	NextBatch(ctx context.Context) (*Batch, error)
	Columns() []string
	Close() error
}

// CollectBatches drains a batch stream into a materialized table named
// "result", appending whole vectors column-wise instead of pulling one
// row at a time, and closes it afterwards.
func CollectBatches(ctx context.Context, it BatchIterator) (*table.Table, error) {
	defer it.Close()
	out := table.New("result")
	for _, c := range it.Columns() {
		out.Columns = append(out.Columns, &table.Column{Name: c})
	}
	for {
		b, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for j := range out.Columns {
			out.Columns[j].Cells = b.Vector(j).AppendTo(out.Columns[j].Cells, b.Sel())
		}
	}
	out.InferTypes()
	return out, nil
}

// collectBatchSource is CollectBatches over a batchSource (RowStream's
// columnar face); Collect dispatches here when the stream is batch-
// shaped so materializing callers get the column-wise drain for free.
func collectBatchSource(ctx context.Context, it batchSource) (*table.Table, error) {
	defer it.Close()
	out := table.New("result")
	for _, c := range it.Columns() {
		out.Columns = append(out.Columns, &table.Column{Name: c})
	}
	for {
		b, err := it.NextBatch(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for j := range out.Columns {
			out.Columns[j].Cells = b.Vector(j).AppendTo(out.Columns[j].Cells, b.Sel())
		}
	}
	out.InferTypes()
	return out, nil
}

// batchMeter instruments the top of a batch pipeline: batches and rows
// delivered (what ExecStats.Batches and the batch-size metrics
// report), plus an optional per-batch hook the observability layer
// installs after the stream opens. Counters are atomic so Stats
// snapshots race-cleanly with consumption.
type batchMeter struct {
	in       BatchIterator
	capacity int
	batches  atomic.Int64
	rows     atomic.Int64
	hook     atomic.Pointer[func(rows, capacity int)]
}

func (m *batchMeter) Columns() []string { return m.in.Columns() }

func (m *batchMeter) Next(ctx context.Context) (*Batch, error) {
	b, err := m.in.Next(ctx)
	if err != nil {
		return nil, err
	}
	m.batches.Add(1)
	m.rows.Add(int64(b.Len()))
	if h := m.hook.Load(); h != nil {
		(*h)(b.Len(), m.capacity)
	}
	return b, nil
}

func (m *batchMeter) Close() error { return m.in.Close() }

// meteredBatchIterator instruments one source's batch scan with the
// shared per-source counter: rows pulled and time blocked, the same
// series the row pipeline's meteredIterator records, so Stats are
// comparable across pipeline modes.
type meteredBatchIterator struct {
	in BatchIterator
	c  *sourceCounter
}

func (m *meteredBatchIterator) Columns() []string { return m.in.Columns() }

func (m *meteredBatchIterator) Next(ctx context.Context) (*Batch, error) {
	start := time.Now()
	b, err := m.in.Next(ctx)
	m.c.blockedNs.Add(int64(time.Since(start)))
	if err == nil {
		m.c.rows.Add(int64(b.Len()))
	}
	return b, err
}

func (m *meteredBatchIterator) Close() error { return m.in.Close() }
