package query

import (
	"context"
	"io"
	"sync"
)

// batchHop is the unit crossing a puller→consumer channel hop in the
// batch fan-in: one already-remapped batch, or the source's terminal
// state after its last batch was delivered.
type batchHop struct {
	b   *Batch
	err error
}

// ParallelUnionBatches merges batch sources concurrently with bounded
// buffering — the columnar ParallelUnion. The architecture is the same:
// one puller goroutine per source (at most opts.Workers running at
// once) drains its source into a per-source queue, the consumer serves
// batches in arrival order, the first source error is sticky and stops
// all pullers, and Close cancels and joins every puller leak-free. The
// difference is the payload: whole batches ride the queue, so the
// fan-in synchronization and the remap onto the union header are paid
// once per batch instead of re-rowifying at the merge.
//
// batchRows is the pipeline's configured batch size; the queue depth is
// the backpressure window divided by it (minimum one batch), keeping
// the buffered row bound comparable to the row fan-in's.
//
// With Workers <= 1 (or fewer than two sources) it returns the
// sequential UnionBatches and its deterministic source order.
func ParallelUnionBatches(ctx context.Context, sources []BatchIterator, want []string, opts FanInOptions, batchRows int) BatchIterator {
	if len(sources) < 2 || opts.sequential() {
		return UnionBatches(sources, want)
	}
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	depth := opts.bufferRows() / batchRows
	if depth < 1 {
		depth = 1
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &parallelUnionBatches{
		cols:   unionBatchColumns(sources, want),
		pctx:   pctx,
		cancel: cancel,
		budget: opts.Budget,
		queues: make([]chan batchHop, len(sources)),
		// Sized so pullers never block on ready (see parallelUnion).
		ready: make(chan int, len(sources)*depth),
	}
	var sem chan struct{}
	if opts.Workers > 0 && opts.Workers < len(sources) {
		sem = make(chan struct{}, opts.Workers)
	}
	p.wg.Add(len(sources))
	for i, src := range sources {
		p.queues[i] = make(chan batchHop, depth)
		go p.pull(pctx, i, src, sem)
	}
	return p
}

// parallelUnionBatches is the consumer half of the columnar fan-in;
// field semantics mirror parallelUnion.
type parallelUnionBatches struct {
	cols   []string
	pctx   context.Context
	cancel context.CancelFunc
	// budget, when set, holds the charge for batches parked in the
	// queues (charged by row count); see parallelUnion.
	budget *MemBudget
	queues []chan batchHop
	ready  chan int
	wg     sync.WaitGroup

	closeMu  sync.Mutex
	closeErr error

	// Consumer-side state (single consumer, no locking needed).
	done   int
	err    error
	closed bool
}

// pull drains one source: acquire a worker slot, remap each batch onto
// the union header, queue it, and finish with the source's terminal
// state. The source is closed here, exactly once, however the stream
// ends.
func (p *parallelUnionBatches) pull(ctx context.Context, i int, src BatchIterator, sem chan struct{}) {
	defer p.wg.Done()
	defer func() {
		if err := src.Close(); err != nil {
			p.closeMu.Lock()
			if p.closeErr == nil {
				p.closeErr = err
			}
			p.closeMu.Unlock()
		}
	}()
	if sem != nil {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-ctx.Done():
			return
		}
	}
	srcMap := batchMapping(src.Columns(), p.cols)
	for {
		b, err := src.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				// Torn down by Close/cancel: nobody is reading anymore.
				return
			}
			p.send(ctx, i, batchHop{err: err})
			return
		}
		if err := p.budget.Acquire(b.Len()); err != nil {
			// Budget exceeded: surface it in-band as this source's
			// terminal error instead of buffering on.
			p.send(ctx, i, batchHop{err: err})
			return
		}
		if !p.send(ctx, i, batchHop{b: remapBatch(b, p.cols, srcMap)}) {
			return
		}
	}
}

// send queues one hop and announces its arrival; false means the
// stream was torn down and the puller should exit.
func (p *parallelUnionBatches) send(ctx context.Context, i int, h batchHop) bool {
	select {
	case p.queues[i] <- h:
	case <-ctx.Done():
		return false
	}
	select {
	case p.ready <- i:
		return true
	case <-ctx.Done():
		return false
	}
}

func (p *parallelUnionBatches) Columns() []string { return p.cols }

func (p *parallelUnionBatches) Next(ctx context.Context) (*Batch, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.closed {
		return nil, io.EOF
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for {
		if p.done == len(p.queues) {
			return nil, io.EOF
		}
		var i int
		select {
		case i = <-p.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.pctx.Done():
			// Open-scope cancellation under a live per-call context:
			// serve anything already announced, then surface the
			// cancellation (sticky) — see parallelUnion.Next.
			select {
			case i = <-p.ready:
			default:
				p.err = p.pctx.Err()
				return nil, p.err
			}
		}
		h := <-p.queues[i]
		if h.b != nil {
			// Dequeued batches leave the fan-in buffer: release their
			// budget charge.
			p.budget.Release(h.b.Len())
		}
		if h.err == io.EOF {
			p.done++
			continue
		}
		if h.err != nil {
			// First source error: sticky, and the remaining pullers stop
			// and close their sources on the way out.
			p.err = h.err
			p.cancel()
			return nil, h.err
		}
		return h.b, nil
	}
}

func (p *parallelUnionBatches) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.cancel()
	p.wg.Wait()
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	return p.closeErr
}
