package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request is the unified query request: one statement plus typed
// execution options, consumed by the single engine entry point
// Engine.Query (and, one layer up, Lake.Query). The options compose
// with — never silently replace — what the statement says:
//
//   - Order, when set, overrides the statement's ORDER BY.
//   - Limit composes with the statement's LIMIT; the stricter bound
//     wins.
//   - FanIn selects the union strategy: 0 picks the default (the
//     engine's configured fan-in, else one puller per CPU), 1 forces
//     the sequential source-concatenation union, n > 1 drains up to n
//     sources concurrently.
//   - BufferRows sizes the per-source backpressure window (0 =
//     engine default).
//   - BatchRows sizes the columnar pipeline's batches (0 = engine
//     default, then DefaultBatchRows); ignored when the query falls
//     back to row-mode execution.
//   - Explain plans the query without executing it, like an EXPLAIN
//     statement.
//   - Analyze (EXPLAIN ANALYZE) executes the query to completion,
//     discards the rows, and returns the plan annotated with live
//     timings and row counts (Plan.Analyzed).
//   - Timeout is the query deadline, covering the whole stream
//     lifetime (open through last row). 0 means no deadline of its
//     own (the lake's admission defaults may still apply one).
//     Expiry surfaces as a typed deadline_exceeded error.
//   - MemoryRows is the query's memory budget: the maximum rows
//     buffered at once across the fan-in queues and the sort stage.
//     0 means unlimited (again modulo admission defaults). Exceeding
//     it fails the query fast with a typed resource_exhausted error
//     instead of letting an unbounded ORDER BY grow the heap.
//   - Shards range-partitions each relational scan into that many
//     cursors over one snapshot, drained through the same fan-in —
//     intra-source parallelism for one large table. 0/1 keeps the
//     single-cursor scan; other store kinds ignore it.
//   - User is the requesting identity, forwarded to remote member
//     lakes so a federated hop authorizes as the original caller.
//     Lake.Query stamps it; engine-only callers may set it directly.
type Request struct {
	SQL        string
	Order      []OrderKey
	Limit      int
	FanIn      int
	BufferRows int
	BatchRows  int
	Explain    bool
	Analyze    bool
	Timeout    time.Duration
	MemoryRows int
	Shards     int
	User       string
}

// DefaultFanIn is the fan-in width used when neither the request nor
// the engine configures one: one puller per CPU. Since ORDER BY makes
// parallel output deterministic, fan-in is on by default; sequential
// remains reachable as the FanIn: 1 degenerate case.
func DefaultFanIn() int { return runtime.NumCPU() }

// Plan is the typed execution plan of one query — what EXPLAIN (and
// RowStream.Plan) reports.
type Plan struct {
	// Statement is the normalized statement text.
	Statement string `json:"statement"`
	// Sources describes the per-source access paths.
	Sources []SourcePlan `json:"sources"`
	// FanIn is the effective union width: 1 means the sequential
	// source-concatenation union, n > 1 means up to n sources drained
	// concurrently.
	FanIn int `json:"fanin"`
	// BufferRows is the per-source backpressure window of a parallel
	// union (0 when sequential).
	BufferRows int `json:"buffer_rows,omitempty"`
	// Batch describes the execution mode: "columnar (N rows/batch)"
	// when the vectorized pipeline serves the query, "row" with the
	// fallback reason otherwise.
	Batch string `json:"batch,omitempty"`
	// Sort names the sort strategy: "none", "full sort", or
	// "top-k heap (k=N)".
	Sort string `json:"sort"`
	// Order echoes the effective sort keys.
	Order []string `json:"order,omitempty"`
	// Limit is the effective row cap (0 = unlimited), after composing
	// the statement's LIMIT with request/lake caps.
	Limit int `json:"limit,omitempty"`
	// MemoryRows is the query's effective memory budget in buffered
	// rows (0 = unlimited).
	MemoryRows int `json:"memory_rows,omitempty"`
	// Timeout is the query's effective deadline (0 = none).
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// Analyzed carries the live execution stats of an EXPLAIN ANALYZE:
	// the query ran to completion and these are its real counters and
	// span timings. Nil for plain EXPLAIN.
	Analyzed *ExecStats `json:"analyzed,omitempty"`
}

// SourcePlan is one FROM item's access path.
type SourcePlan struct {
	// Source is the FROM item as written.
	Source string `json:"source"`
	// Store is the member store serving it (rel, doc, graph, file).
	Store string `json:"store"`
	// Access names the store-native access path.
	Access string `json:"access"`
	// Pushdown lists the predicates evaluated inside the store;
	// predicates not listed run as a central filter stage.
	Pushdown []string `json:"pushdown,omitempty"`
	// Project lists the columns the store projects during the scan
	// (empty = the store returns its full width).
	Project []string `json:"project,omitempty"`
}

// String pretty-prints the plan, one line per fact — what lakectl
// -explain shows.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.Statement)
	union := "sequential (source concatenation)"
	if p.FanIn > 1 {
		union = fmt.Sprintf("parallel fan-in %d (buffer %d rows/source)", p.FanIn, p.BufferRows)
	}
	fmt.Fprintf(&sb, "  union: %s\n", union)
	if p.Batch != "" {
		fmt.Fprintf(&sb, "  batch: %s\n", p.Batch)
	}
	fmt.Fprintf(&sb, "  sort: %s", p.Sort)
	if len(p.Order) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(p.Order, ", "))
	}
	sb.WriteString("\n")
	if p.Limit > 0 {
		fmt.Fprintf(&sb, "  limit: %d\n", p.Limit)
	}
	if p.MemoryRows > 0 {
		fmt.Fprintf(&sb, "  memory budget: %d buffered rows\n", p.MemoryRows)
	}
	if p.Timeout > 0 {
		fmt.Fprintf(&sb, "  timeout: %s\n", p.Timeout)
	}
	for _, s := range p.Sources {
		fmt.Fprintf(&sb, "  source %s: %s scan, %s", s.Source, s.Store, s.Access)
		if len(s.Pushdown) > 0 {
			fmt.Fprintf(&sb, ", pushdown [%s]", strings.Join(s.Pushdown, " AND "))
		}
		if len(s.Project) > 0 {
			fmt.Fprintf(&sb, ", project [%s]", strings.Join(s.Project, ", "))
		}
		sb.WriteString("\n")
	}
	if a := p.Analyzed; a != nil {
		fmt.Fprintf(&sb, "  analyzed: %d rows out\n", a.RowsOut)
		if a.Batches > 0 {
			fmt.Fprintf(&sb, "    batches: %d\n", a.Batches)
		}
		for _, s := range a.Sources {
			fmt.Fprintf(&sb, "    source %s: %d rows, blocked %s\n",
				s.Source, s.Rows, s.Blocked.Round(time.Microsecond))
		}
		for _, sp := range a.Trace {
			fmt.Fprintf(&sb, "    %s: %s\n", sp.Name, sp.Duration.Round(time.Microsecond))
		}
		if a.SortHeapRows > 0 {
			fmt.Fprintf(&sb, "    sort heap high-water: %d rows\n", a.SortHeapRows)
		}
	}
	return sb.String()
}

// Span is one named stage timing inside a query trace.
type Span struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace collects span timings for one query: plan, open-sources,
// execute, sort, serialize. The engine records the build-time spans;
// the stream computes execute/sort live; transport layers append their
// own (serialize) through RowStream.AddSpan. Concurrency-safe — spans
// are added by the consumer goroutine while Stats snapshots may happen
// elsewhere.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// Add appends one span.
func (t *Trace) Add(name string, d time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Duration: d})
	t.mu.Unlock()
}

// Spans snapshots the spans recorded so far.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SourceStats is one source's execution counters, snapshotted by
// RowStream.Stats: how many rows the union pulled from it and how long
// the pipeline spent blocked waiting on its Next — the "which member
// store is slow" signal the fan-in scheduler exists to absorb.
type SourceStats struct {
	Source  string        `json:"source"`
	Rows    int64         `json:"rows"`
	Blocked time.Duration `json:"blocked_ns"`
}

// ExecStats snapshots a stream's execution: per-source pull counters,
// the rows actually delivered to the consumer (after sort/limit), the
// per-stage trace spans, the sort stage's heap high-water mark (0 when
// the query had no sort), and the number of columnar batches the
// pipeline moved (0 in row mode).
type ExecStats struct {
	Sources      []SourceStats `json:"sources"`
	RowsOut      int64         `json:"rows_out"`
	Trace        []Span        `json:"trace,omitempty"`
	SortHeapRows int64         `json:"sort_heap_rows,omitempty"`
	Batches      int64         `json:"batches,omitempty"`
}

// sourceCounter is the mutable, atomically-updated collector behind
// one SourceStats; parallel pullers update it concurrently with
// Stats() snapshots.
type sourceCounter struct {
	source    string
	rows      atomic.Int64
	blockedNs atomic.Int64
}

func (c *sourceCounter) snapshot() SourceStats {
	return SourceStats{
		Source:  c.source,
		Rows:    c.rows.Load(),
		Blocked: time.Duration(c.blockedNs.Load()),
	}
}

// meteredIterator instruments one source scan with its counter.
type meteredIterator struct {
	in RowIterator
	c  *sourceCounter
}

func (m *meteredIterator) Columns() []string { return m.in.Columns() }

func (m *meteredIterator) Next(ctx context.Context) (Row, error) {
	start := time.Now()
	row, err := m.in.Next(ctx)
	m.c.blockedNs.Add(int64(time.Since(start)))
	if err == nil {
		m.c.rows.Add(1)
	}
	return row, err
}

func (m *meteredIterator) Close() error { return m.in.Close() }

// RowStream is the result of Engine.Query / Lake.Query: the familiar
// pull-based row iterator plus plan introspection (Plan) and live
// per-source execution stats (Stats). ErrMap, when set, rewrites
// non-EOF row errors — the Lake installs its lakeerr classifier there
// so streaming consumers keep dispatching on error codes.
type RowStream struct {
	it       RowIterator
	plan     *Plan
	explain  bool
	counters []*sourceCounter
	rowsOut  atomic.Int64

	// bit is the stream's columnar face: set when the batch pipeline
	// runs end-to-end, so NextBatch can drain whole batches without the
	// row adapter in between. it and bit share the underlying pipeline
	// — a consumer picks one drain mode, not both.
	bit BatchIterator
	// bmeter counts the pipeline's batches (set whenever the engine
	// picked batch execution, even when a sort stage re-rowifies the
	// output) and carries the per-batch observability hook.
	bmeter *batchMeter

	// trace carries the build-time spans the engine recorded (plan,
	// open-sources) plus any the transport appends via AddSpan. Nil on
	// explain-only streams.
	trace *Trace
	// sorter is the sort stage's handle when the plan has one, so
	// Stats can report the sort span and heap high-water mark live.
	sorter *sortIterator
	// execStartNs/execDoneNs bracket the execute span: first Next and
	// terminal event (EOF, error, or Close), CAS-set so each end is
	// stamped exactly once and Stats computes the span instead of
	// storing it.
	execStartNs atomic.Int64
	execDoneNs  atomic.Int64

	// errMu guards firstErr, the first non-EOF error Next surfaced —
	// what Err reports to the metrics fold at close.
	errMu    sync.Mutex
	firstErr error
	// closeHooks run exactly once, after the underlying iterator is
	// closed — the Lake folds the final Stats into its metrics here.
	closeHooks []func()
	closeOnce  sync.Once

	// ErrMap rewrites row-level errors before they surface from Next
	// (io.EOF passes through). Nil means errors surface unchanged.
	ErrMap func(error) error

	// deadline, when set, bounds the whole stream lifetime: Next and
	// NextBatch fail with context.DeadlineExceeded once it passes,
	// independent of the per-call context (an HTTP request context,
	// for example, carries no query deadline of its own). Set via
	// SetDeadline before the first Next. deadlineCountdown amortizes
	// the wall-clock read on the row path: Next re-checks the clock
	// every deadlineEvery rows instead of every row (NextBatch checks
	// every batch — batches are already coarse).
	deadline          time.Time
	deadlineCountdown int
}

// deadlineEvery bounds how many rows may pass between wall-clock
// deadline checks on the row path. The open context carries the same
// deadline and tears the pullers down promptly either way; this only
// bounds how many already-buffered rows may still surface first.
const deadlineEvery = 64

// SetDeadline installs the stream's deadline; zero means none. The
// deadline is checked between rows (at deadlineEvery granularity) and
// between batches, so a query that outlives it fails mid-stream with a
// typed deadline error rather than running unbounded. The next pull
// after a SetDeadline always checks.
func (s *RowStream) SetDeadline(t time.Time) {
	s.deadline = t
	s.deadlineCountdown = 0
}

// expired surfaces the stream deadline as the standard context error,
// so the lakeerr classifier (and ErrMap) route it exactly like a
// context-level expiry. Row-path callers pay one wall-clock read per
// deadlineEvery rows.
func (s *RowStream) expired() error {
	if s.deadline.IsZero() {
		return nil
	}
	if s.deadlineCountdown > 0 {
		s.deadlineCountdown--
		return nil
	}
	s.deadlineCountdown = deadlineEvery - 1
	if time.Now().After(s.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// expiredNow is the batch-path check: batches are coarse already, so
// every pull reads the clock.
func (s *RowStream) expiredNow() error {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// Columns is the stream's output header.
func (s *RowStream) Columns() []string { return s.it.Columns() }

// Next returns the next row or io.EOF; see RowIterator. A stream
// deadline (SetDeadline) that has passed fails the call with a
// deadline error even while the per-call context is live.
func (s *RowStream) Next(ctx context.Context) (Row, error) {
	s.execStartNs.CompareAndSwap(0, time.Now().UnixNano())
	var row Row
	err := s.expired()
	if err == nil {
		row, err = s.it.Next(ctx)
	}
	if err != nil {
		s.execDoneNs.CompareAndSwap(0, time.Now().UnixNano())
		if err != io.EOF {
			if s.ErrMap != nil {
				err = s.ErrMap(err)
			}
			s.errMu.Lock()
			if s.firstErr == nil {
				s.firstErr = err
			}
			s.errMu.Unlock()
		}
		return nil, err
	}
	s.rowsOut.Add(1)
	return row, nil
}

// BatchMode reports whether the engine executed this query through the
// columnar batch pipeline (true even when the output is row-shaped,
// e.g. behind a sort stage).
func (s *RowStream) BatchMode() bool { return s.bmeter != nil }

// BatchOutput reports whether the stream can be drained batch-wise via
// NextBatch — true when the batch pipeline runs end-to-end with no
// re-rowifying stage on top.
func (s *RowStream) BatchOutput() bool { return s.bit != nil }

// NextBatch returns the next columnar batch or io.EOF; it errors on a
// stream without batch output (check BatchOutput first). A consumer
// drains the stream either row-wise via Next or batch-wise via
// NextBatch — mixing the two mid-stream is not supported.
func (s *RowStream) NextBatch(ctx context.Context) (*Batch, error) {
	if s.bit == nil {
		return nil, errors.New("query: stream has no batch output; drain rows via Next")
	}
	s.execStartNs.CompareAndSwap(0, time.Now().UnixNano())
	var b *Batch
	err := s.expiredNow()
	if err == nil {
		b, err = s.bit.Next(ctx)
	}
	if err != nil {
		s.execDoneNs.CompareAndSwap(0, time.Now().UnixNano())
		if err != io.EOF {
			if s.ErrMap != nil {
				err = s.ErrMap(err)
			}
			s.errMu.Lock()
			if s.firstErr == nil {
				s.firstErr = err
			}
			s.errMu.Unlock()
		}
		return nil, err
	}
	s.rowsOut.Add(int64(b.Len()))
	return b, nil
}

// OnBatch installs fn to observe every batch the pipeline moves (rows
// is the batch's logical row count, capacity the configured batch
// size) — the observability layer's hook for batch-size and fill-ratio
// metrics. No-op on a row-mode stream.
func (s *RowStream) OnBatch(fn func(rows, capacity int)) {
	if s.bmeter != nil {
		s.bmeter.hook.Store(&fn)
	}
}

// Close releases the stream; idempotent. Close hooks registered with
// OnClose run exactly once, after the pipeline is released.
func (s *RowStream) Close() error {
	err := s.it.Close()
	s.execDoneNs.CompareAndSwap(0, time.Now().UnixNano())
	s.closeOnce.Do(func() {
		for _, fn := range s.closeHooks {
			fn()
		}
	})
	return err
}

// OnClose registers fn to run exactly once when the stream is closed,
// after the pipeline is released — the point where Stats is final.
func (s *RowStream) OnClose(fn func()) { s.closeHooks = append(s.closeHooks, fn) }

// AddSpan appends a span to the stream's trace — transport layers
// record serialize time here. No-op on an explain-only stream.
func (s *RowStream) AddSpan(name string, d time.Duration) {
	if s.trace != nil {
		s.trace.Add(name, d)
	}
}

// Err returns the first non-EOF error the stream surfaced, or nil on a
// clean stream.
func (s *RowStream) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// Plan returns the typed execution plan (never nil).
func (s *RowStream) Plan() *Plan { return s.plan }

// ExplainOnly reports whether the stream is the rowless answer to an
// explain request: the Plan is the whole result.
func (s *RowStream) ExplainOnly() bool { return s.explain }

// Stats snapshots the per-source execution counters and trace. Safe to
// call while the stream is still being consumed and after Close; an
// explain-only stream reports zero counters. The execute span covers
// first Next to the terminal event (now, if the stream is still live);
// the sort span is the time the sort stage spent draining its input.
func (s *RowStream) Stats() ExecStats {
	st := ExecStats{Sources: make([]SourceStats, len(s.counters)), RowsOut: s.rowsOut.Load()}
	for i, c := range s.counters {
		st.Sources[i] = c.snapshot()
	}
	if s.trace != nil {
		st.Trace = s.trace.Spans()
	}
	if start := s.execStartNs.Load(); start != 0 {
		done := s.execDoneNs.Load()
		if done == 0 {
			done = time.Now().UnixNano()
		}
		st.Trace = append(st.Trace, Span{Name: "execute", Duration: time.Duration(done - start)})
	}
	if s.sorter != nil {
		st.Trace = append(st.Trace, Span{Name: "sort", Duration: time.Duration(s.sorter.fillNs.Load())})
		st.SortHeapRows = s.sorter.maxHeld.Load()
	}
	if s.bmeter != nil {
		st.Batches = s.bmeter.batches.Load()
	}
	return st
}

// emptyIterator is the explain-only stream body: a header, no rows.
type emptyIterator struct{ cols []string }

func (e *emptyIterator) Columns() []string                 { return e.cols }
func (e *emptyIterator) Next(context.Context) (Row, error) { return nil, io.EOF }
func (e *emptyIterator) Close() error                      { return nil }
