package query

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"
)

// Request is the unified query request: one statement plus typed
// execution options, consumed by the single engine entry point
// Engine.Query (and, one layer up, Lake.Query). The options compose
// with — never silently replace — what the statement says:
//
//   - Order, when set, overrides the statement's ORDER BY.
//   - Limit composes with the statement's LIMIT; the stricter bound
//     wins.
//   - FanIn selects the union strategy: 0 picks the default (the
//     engine's configured fan-in, else one puller per CPU), 1 forces
//     the sequential source-concatenation union, n > 1 drains up to n
//     sources concurrently.
//   - BufferRows sizes the per-source backpressure window (0 =
//     engine default).
//   - Explain plans the query without executing it, like an EXPLAIN
//     statement.
type Request struct {
	SQL        string
	Order      []OrderKey
	Limit      int
	FanIn      int
	BufferRows int
	Explain    bool
}

// DefaultFanIn is the fan-in width used when neither the request nor
// the engine configures one: one puller per CPU. Since ORDER BY makes
// parallel output deterministic, fan-in is on by default; sequential
// remains reachable as the FanIn: 1 degenerate case.
func DefaultFanIn() int { return runtime.NumCPU() }

// Plan is the typed execution plan of one query — what EXPLAIN (and
// RowStream.Plan) reports.
type Plan struct {
	// Statement is the normalized statement text.
	Statement string `json:"statement"`
	// Sources describes the per-source access paths.
	Sources []SourcePlan `json:"sources"`
	// FanIn is the effective union width: 1 means the sequential
	// source-concatenation union, n > 1 means up to n sources drained
	// concurrently.
	FanIn int `json:"fanin"`
	// BufferRows is the per-source backpressure window of a parallel
	// union (0 when sequential).
	BufferRows int `json:"buffer_rows,omitempty"`
	// Sort names the sort strategy: "none", "full sort", or
	// "top-k heap (k=N)".
	Sort string `json:"sort"`
	// Order echoes the effective sort keys.
	Order []string `json:"order,omitempty"`
	// Limit is the effective row cap (0 = unlimited), after composing
	// the statement's LIMIT with request/lake caps.
	Limit int `json:"limit,omitempty"`
}

// SourcePlan is one FROM item's access path.
type SourcePlan struct {
	// Source is the FROM item as written.
	Source string `json:"source"`
	// Store is the member store serving it (rel, doc, graph, file).
	Store string `json:"store"`
	// Access names the store-native access path.
	Access string `json:"access"`
	// Pushdown lists the predicates evaluated inside the store;
	// predicates not listed run as a central filter stage.
	Pushdown []string `json:"pushdown,omitempty"`
	// Project lists the columns the store projects during the scan
	// (empty = the store returns its full width).
	Project []string `json:"project,omitempty"`
}

// String pretty-prints the plan, one line per fact — what lakectl
// -explain shows.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.Statement)
	union := "sequential (source concatenation)"
	if p.FanIn > 1 {
		union = fmt.Sprintf("parallel fan-in %d (buffer %d rows/source)", p.FanIn, p.BufferRows)
	}
	fmt.Fprintf(&sb, "  union: %s\n", union)
	fmt.Fprintf(&sb, "  sort: %s", p.Sort)
	if len(p.Order) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(p.Order, ", "))
	}
	sb.WriteString("\n")
	if p.Limit > 0 {
		fmt.Fprintf(&sb, "  limit: %d\n", p.Limit)
	}
	for _, s := range p.Sources {
		fmt.Fprintf(&sb, "  source %s: %s scan, %s", s.Source, s.Store, s.Access)
		if len(s.Pushdown) > 0 {
			fmt.Fprintf(&sb, ", pushdown [%s]", strings.Join(s.Pushdown, " AND "))
		}
		if len(s.Project) > 0 {
			fmt.Fprintf(&sb, ", project [%s]", strings.Join(s.Project, ", "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// SourceStats is one source's execution counters, snapshotted by
// RowStream.Stats: how many rows the union pulled from it and how long
// the pipeline spent blocked waiting on its Next — the "which member
// store is slow" signal the fan-in scheduler exists to absorb.
type SourceStats struct {
	Source  string        `json:"source"`
	Rows    int64         `json:"rows"`
	Blocked time.Duration `json:"blocked_ns"`
}

// ExecStats snapshots a stream's execution: per-source pull counters
// plus the rows actually delivered to the consumer (after sort/limit).
type ExecStats struct {
	Sources []SourceStats `json:"sources"`
	RowsOut int64         `json:"rows_out"`
}

// sourceCounter is the mutable, atomically-updated collector behind
// one SourceStats; parallel pullers update it concurrently with
// Stats() snapshots.
type sourceCounter struct {
	source    string
	rows      atomic.Int64
	blockedNs atomic.Int64
}

func (c *sourceCounter) snapshot() SourceStats {
	return SourceStats{
		Source:  c.source,
		Rows:    c.rows.Load(),
		Blocked: time.Duration(c.blockedNs.Load()),
	}
}

// meteredIterator instruments one source scan with its counter.
type meteredIterator struct {
	in RowIterator
	c  *sourceCounter
}

func (m *meteredIterator) Columns() []string { return m.in.Columns() }

func (m *meteredIterator) Next(ctx context.Context) (Row, error) {
	start := time.Now()
	row, err := m.in.Next(ctx)
	m.c.blockedNs.Add(int64(time.Since(start)))
	if err == nil {
		m.c.rows.Add(1)
	}
	return row, err
}

func (m *meteredIterator) Close() error { return m.in.Close() }

// RowStream is the result of Engine.Query / Lake.Query: the familiar
// pull-based row iterator plus plan introspection (Plan) and live
// per-source execution stats (Stats). ErrMap, when set, rewrites
// non-EOF row errors — the Lake installs its lakeerr classifier there
// so streaming consumers keep dispatching on error codes.
type RowStream struct {
	it       RowIterator
	plan     *Plan
	explain  bool
	counters []*sourceCounter
	rowsOut  atomic.Int64

	// ErrMap rewrites row-level errors before they surface from Next
	// (io.EOF passes through). Nil means errors surface unchanged.
	ErrMap func(error) error
}

// Columns is the stream's output header.
func (s *RowStream) Columns() []string { return s.it.Columns() }

// Next returns the next row or io.EOF; see RowIterator.
func (s *RowStream) Next(ctx context.Context) (Row, error) {
	row, err := s.it.Next(ctx)
	if err != nil {
		if err != io.EOF && s.ErrMap != nil {
			err = s.ErrMap(err)
		}
		return nil, err
	}
	s.rowsOut.Add(1)
	return row, nil
}

// Close releases the stream; idempotent.
func (s *RowStream) Close() error { return s.it.Close() }

// Plan returns the typed execution plan (never nil).
func (s *RowStream) Plan() *Plan { return s.plan }

// ExplainOnly reports whether the stream is the rowless answer to an
// explain request: the Plan is the whole result.
func (s *RowStream) ExplainOnly() bool { return s.explain }

// Stats snapshots the per-source execution counters. Safe to call
// while the stream is still being consumed and after Close; an
// explain-only stream reports zero counters.
func (s *RowStream) Stats() ExecStats {
	st := ExecStats{Sources: make([]SourceStats, len(s.counters)), RowsOut: s.rowsOut.Load()}
	for i, c := range s.counters {
		st.Sources[i] = c.snapshot()
	}
	return st
}

// emptyIterator is the explain-only stream body: a header, no rows.
type emptyIterator struct{ cols []string }

func (e *emptyIterator) Columns() []string                 { return e.cols }
func (e *emptyIterator) Next(context.Context) (Row, error) { return nil, io.EOF }
func (e *emptyIterator) Close() error                      { return nil }
