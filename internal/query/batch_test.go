package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// relEngine builds an engine over three relational tables with
// heterogeneous headers — the all-"rel" federation the columnar
// pipeline serves, with null padding and numeric/string predicate
// cells both represented.
func relEngine(t *testing.T) *Engine {
	t.Helper()
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(path, csv string) {
		t.Helper()
		if _, err := p.Ingest(path, []byte(csv)); err != nil {
			t.Fatal(err)
		}
	}
	ingest("raw/hotels_a.csv", "city,price\nams,10\nparis,30\nrome,20\nlima,\n")
	ingest("raw/hotels_b.csv", "city,price,stars\noslo,15,4\nbern,50,5\nkyoto,70,3\n")
	ingest("raw/hotels_c.csv", "city,pop\nquito,2\nosaka,19\n")
	return NewEngine(p)
}

// equivalenceQueries are the query shapes the batch/row equivalence
// property sweeps: SELECT *, explicit projection with null padding,
// numeric and string predicates, LIMIT, and ORDER BY. limited marks
// queries whose surviving rows are arrival-order-dependent at fan-in
// > 1 (LIMIT without ORDER BY) — there the pipelines can only agree on
// count and membership, exactly as the row pipeline's own widths do.
var equivalenceQueries = []struct {
	sql     string
	limited bool
}{
	{sql: "SELECT * FROM rel:hotels_a, rel:hotels_b, rel:hotels_c"},
	{sql: "SELECT city, price FROM rel:hotels_a, rel:hotels_b, rel:hotels_c"},
	{sql: "SELECT city, price FROM rel:hotels_a, rel:hotels_b WHERE price > 20"},
	{sql: "SELECT city, stars FROM rel:hotels_a, rel:hotels_b WHERE city = 'oslo'"},
	{sql: "SELECT city FROM rel:hotels_a, rel:hotels_b, rel:hotels_c LIMIT 4", limited: true},
	{sql: "SELECT * FROM rel:hotels_a WHERE missing = '1'"},
}

func drainStream(t *testing.T, st *RowStream) [][]string {
	t.Helper()
	var out [][]string
	for {
		row, err := st.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, append(Row(nil), row...))
	}
}

// TestBatchRowEquivalence is the pinning property test: across batch
// sizes and fan-in widths, the columnar pipeline's header and rows are
// byte-identical to the row pipeline's. Sequential widths compare the
// exact sequence (source-concatenation order is part of the row
// pipeline's contract); parallel widths compare the sorted multiset,
// exactly as the row pipeline's own fan-in tests do.
func TestBatchRowEquivalence(t *testing.T) {
	e := relEngine(t)
	rowEng := NewEngine(e.Poly)
	rowEng.DisableBatch = true
	ctx := context.Background()
	for _, tc := range equivalenceQueries {
		rst, err := rowEng.Query(ctx, Request{SQL: tc.sql})
		if err != nil {
			t.Fatal(err)
		}
		wantHeader := rst.Columns()
		wantRows := drainStream(t, rst)
		_ = rst.Close()
		// For LIMIT-at-width queries the reference is the unlimited row
		// multiset: any LIMIT-sized subset of it is a correct answer.
		var universe map[string]bool
		if tc.limited {
			unlimited, _, ok := strings.Cut(tc.sql, " LIMIT ")
			if !ok {
				t.Fatalf("limited query %q has no LIMIT", tc.sql)
			}
			ust, err := rowEng.Query(ctx, Request{SQL: unlimited})
			if err != nil {
				t.Fatal(err)
			}
			universe = map[string]bool{}
			for _, row := range drainStream(t, ust) {
				universe[fmt.Sprint(row)] = true
			}
			_ = ust.Close()
		}
		for _, batchRows := range []int{1, 7, 1024} {
			for _, fanIn := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/batch=%d/fanin=%d", tc.sql, batchRows, fanIn)
				st, err := e.Query(ctx, Request{SQL: tc.sql, BatchRows: batchRows, FanIn: fanIn})
				if err != nil {
					t.Fatal(err)
				}
				if !st.BatchMode() {
					t.Errorf("%s: batch mode off, want on", name)
				}
				if got := st.Columns(); !reflect.DeepEqual(got, wantHeader) {
					t.Fatalf("%s: header %v, want %v", name, got, wantHeader)
				}
				got := drainStream(t, st)
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				if tc.limited && fanIn > 1 {
					if len(got) != len(wantRows) {
						t.Errorf("%s: %d rows, want %d", name, len(got), len(wantRows))
					}
					for _, row := range got {
						if !universe[fmt.Sprint(row)] {
							t.Errorf("%s: row %v not in the unlimited result", name, row)
						}
					}
					continue
				}
				want := wantRows
				if fanIn > 1 {
					got, want = sortedRows(got), sortedRows(want)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: rows %v, want %v", name, got, want)
				}
			}
		}
	}
}

// TestBatchRowEquivalenceOrdered: with ORDER BY the comparison is
// exact at every width — the total-order sort makes parallel arrival
// order irrelevant.
func TestBatchRowEquivalenceOrdered(t *testing.T) {
	e := relEngine(t)
	rowEng := NewEngine(e.Poly)
	rowEng.DisableBatch = true
	ctx := context.Background()
	sql := "SELECT city, price FROM rel:hotels_a, rel:hotels_b, rel:hotels_c"
	order := []OrderKey{{Column: "price", Desc: true}, {Column: "city"}}
	rst, err := rowEng.Query(ctx, Request{SQL: sql, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	want := drainStream(t, rst)
	_ = rst.Close()
	for _, batchRows := range []int{1, 7, 1024} {
		for _, fanIn := range []int{1, 4, 8} {
			st, err := e.Query(ctx, Request{SQL: sql, Order: order, BatchRows: batchRows, FanIn: fanIn})
			if err != nil {
				t.Fatal(err)
			}
			got := drainStream(t, st)
			_ = st.Close()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("batch=%d fanin=%d: rows %v, want %v", batchRows, fanIn, got, want)
			}
		}
	}
}

// TestBatchAdapterRoundTrip: Rows(Batches(it)) reproduces the input
// stream exactly, at any batch size, including sizes that straddle the
// input length.
func TestBatchAdapterRoundTrip(t *testing.T) {
	rows := [][]string{{"a", "1"}, {"b", "2"}, {"c", ""}, {"d", "4"}, {"e", "5"}}
	for _, n := range []int{1, 2, 3, 5, 100} {
		it := Rows(Batches(NewSliceIterator([]string{"k", "v"}, rows), n))
		got := drain(t, it)
		if !reflect.DeepEqual(got, rows) {
			t.Errorf("rows=%d: %v, want %v", n, got, rows)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFilterBatchesMatchesRowFilter pins the vectorized predicate path
// to Predicate.Matches semantics cell by cell: numeric comparison when
// both sides parse, string comparison otherwise, empty cells included.
func TestFilterBatchesMatchesRowFilter(t *testing.T) {
	cols := []string{"v"}
	cells := [][]string{{"10"}, {"9.5"}, {""}, {"abc"}, {"10.0"}, {"-3"}, {"2e1"}}
	preds := [][]Predicate{
		{{Column: "v", Op: ">", Value: "9", Numeric: true}},
		{{Column: "v", Op: "=", Value: "10", Numeric: true}},
		{{Column: "v", Op: "!=", Value: "abc"}},
		{{Column: "v", Op: "<=", Value: "10", Numeric: true}},
		{{Column: "v", Op: ">", Value: "aaa"}},
		{{Column: "missing", Op: "=", Value: "1"}},
	}
	for _, ps := range preds {
		want := drain(t, Filter(NewSliceIterator(cols, cells), ps))
		for _, n := range []int{1, 3, 1024} {
			it := Rows(FilterBatches(Batches(NewSliceIterator(cols, cells), n), ps))
			got := drain(t, it)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("preds=%v rows=%d: %v, want %v", ps, n, got, want)
			}
		}
	}
}

// blockingBatchSource blocks every Next until its gate opens, then
// yields single-row batches — the synthetic stalled member store of
// the batch teardown tests.
type blockingBatchSource struct {
	cols   []string
	gate   chan struct{}
	closes atomic.Int64
}

func (s *blockingBatchSource) Columns() []string { return s.cols }

func (s *blockingBatchSource) Next(ctx context.Context) (*Batch, error) {
	select {
	case <-s.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return NewBatch(s.cols, []*Vector{NewVector(table.KindString, []string{"x"})}), nil
}

func (s *blockingBatchSource) Close() error {
	s.closes.Add(1)
	return nil
}

// TestParallelUnionBatchesCloseMidStreamIsLeakFree: closing the
// parallel batch union with pullers blocked on their sources must
// unblock and join every puller and close every source.
func TestParallelUnionBatchesCloseMidStreamIsLeakFree(t *testing.T) {
	sources := make([]BatchIterator, 4)
	blocked := make([]*blockingBatchSource, 4)
	for i := range sources {
		blocked[i] = &blockingBatchSource{cols: []string{"v"}, gate: make(chan struct{})}
		sources[i] = blocked[i]
	}
	it := ParallelUnionBatches(context.Background(), sources, nil, FanInOptions{Workers: 4}, 8)
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	for i, s := range blocked {
		if s.closes.Load() == 0 {
			t.Errorf("source %d not closed on early Close", i)
		}
	}
	// Close is idempotent.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelUnionBatchesConsumerCancelUnblocksAndTearsDown: a
// consumer-side cancellation must surface promptly even with every
// source stalled, and Close must still join the pullers.
func TestParallelUnionBatchesConsumerCancelUnblocksAndTearsDown(t *testing.T) {
	sources := make([]BatchIterator, 3)
	for i := range sources {
		sources[i] = &blockingBatchSource{cols: []string{"v"}, gate: make(chan struct{})}
	}
	ctx, cancel := context.WithCancel(context.Background())
	it := ParallelUnionBatches(ctx, sources, nil, FanInOptions{Workers: 3}, 8)
	cancel()
	if _, err := it.Next(ctx); err == nil || err == io.EOF {
		t.Fatalf("Next after cancel = %v, want error", err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// ctxBlindBatchSource yields batches forever and never looks at the
// context — the pathological source behind the sequential-union
// cancellation regression test.
type ctxBlindBatchSource struct {
	cols []string
}

func (s *ctxBlindBatchSource) Columns() []string { return s.cols }

func (s *ctxBlindBatchSource) Next(context.Context) (*Batch, error) {
	return NewBatch(s.cols, []*Vector{NewVector(table.KindString, []string{"x"})}), nil
}

func (s *ctxBlindBatchSource) Close() error { return nil }

// TestUnionBatchesChecksContextBetweenBatches: the sequential batch
// union re-checks the caller's context between batches, so a cancelled
// query terminates even when the member source ignores cancellation.
func TestUnionBatchesChecksContextBetweenBatches(t *testing.T) {
	u := UnionBatches([]BatchIterator{&ctxBlindBatchSource{cols: []string{"v"}}}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := u.Next(ctx); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	if _, err := u.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	// Transient: a live context resumes the stream.
	if _, err := u.Next(context.Background()); err != nil {
		t.Fatalf("Next after resume: %v", err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

// countingBatchSource wraps Batches over a counting row source so the
// test can observe Close propagation through batch stages.
type countingBatchSource struct {
	BatchIterator
	closes atomic.Int64
}

func (c *countingBatchSource) Close() error {
	c.closes.Add(1)
	return c.BatchIterator.Close()
}

// TestLimitBatchesEagerClose: once the cap is reached the input is
// closed immediately, releasing source scans before the consumer's
// Close.
func TestLimitBatchesEagerClose(t *testing.T) {
	rows := make([][]string, 100)
	for i := range rows {
		rows[i] = []string{fmt.Sprint(i)}
	}
	src := &countingBatchSource{BatchIterator: Batches(NewSliceIterator([]string{"v"}, rows), 8)}
	it := Rows(LimitBatches(src, 10))
	got := drain(t, it)
	if len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}
	if src.closes.Load() == 0 {
		t.Error("input not closed eagerly at the limit")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPlanAndStats: the plan line says which pipeline ran, EXPLAIN
// ANALYZE carries the batch count, and Stats reports batches.
func TestBatchPlanAndStats(t *testing.T) {
	e := relEngine(t)
	ctx := context.Background()
	st, err := e.Query(ctx, Request{SQL: "SELECT city FROM rel:hotels_a", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Plan().String(); !strings.Contains(s, "batch: columnar (1024 rows/batch)") {
		t.Errorf("explain plan missing batch line:\n%s", s)
	}
	_ = st.Close()
	st, err = e.Query(ctx, Request{SQL: "EXPLAIN ANALYZE SELECT city FROM rel:hotels_a, rel:hotels_b", BatchRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Plan().String(); !strings.Contains(s, "batches:") {
		t.Errorf("explain analyze missing batches count:\n%s", s)
	}
	_ = st.Close()
	st, err = e.Query(ctx, Request{SQL: "SELECT city FROM rel:hotels_a", BatchRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	drainStream(t, st)
	_ = st.Close()
	if got := st.Stats().Batches; got < 2 {
		t.Errorf("Stats().Batches = %d, want >= 2", got)
	}
}

// TestBatchModeFallsBackForNonRelSources: a FROM list with any
// non-relational member runs the row pipeline (and says so in the
// plan), since only the relational store has a batch scan.
func TestBatchModeFallsBackForNonRelSources(t *testing.T) {
	e := federatedEngine(t)
	st, err := e.Query(context.Background(), Request{SQL: "SELECT city, price FROM rel:hotels_a, doc:hotels_b"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.BatchMode() {
		t.Error("batch mode on for a mixed-store federation")
	}
	if s := st.Plan().String(); !strings.Contains(s, "batch: row") {
		t.Errorf("plan missing row-fallback line:\n%s", s)
	}
	if _, err := st.NextBatch(context.Background()); err == nil {
		t.Error("NextBatch on a row-mode stream should error")
	}
}

// TestBatchEarlyCloseReleasesSources: closing a batch-mode stream
// mid-drain closes every underlying cursor-backed source without
// error — the leak check for the full assembled pipeline.
func TestBatchEarlyCloseReleasesSources(t *testing.T) {
	e := relEngine(t)
	for _, fanIn := range []int{1, 4} {
		st, err := e.Query(context.Background(), Request{
			SQL: "SELECT * FROM rel:hotels_a, rel:hotels_b, rel:hotels_c", FanIn: fanIn, BatchRows: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("fanin=%d: Close: %v", fanIn, err)
		}
		// Close is idempotent even mid-stream.
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCollectUsesBatchFace: Collect over a batch-mode stream drains
// column-wise and returns the same table the row pipeline produces.
func TestCollectUsesBatchFace(t *testing.T) {
	e := relEngine(t)
	rowEng := NewEngine(e.Poly)
	rowEng.DisableBatch = true
	ctx := context.Background()
	sql := "SELECT city, price FROM rel:hotels_a, rel:hotels_b WHERE price > 20"
	want, err := rowEng.ExecuteSQL(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ExecuteSQL(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if wantCSV, gotCSV := table.ToCSV(want), table.ToCSV(got); wantCSV != gotCSV {
		t.Errorf("batch collect:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}
}
