package query

import "context"

// faultIterator is the query-stage half of the chaos harness: it sits
// on top of the assembled pipeline and consults the engine's Fault
// hook before each row, so tests can fail a query mid-stream at a
// chosen row and assert the teardown path (typed trailer error,
// leak-free pullers, released admission ticket) behaves.
type faultIterator struct {
	in    RowIterator
	fault func(stage string) error
}

func (f *faultIterator) Columns() []string { return f.in.Columns() }

func (f *faultIterator) Next(ctx context.Context) (Row, error) {
	if err := f.fault("next"); err != nil {
		return nil, err
	}
	return f.in.Next(ctx)
}

func (f *faultIterator) Close() error { return f.in.Close() }

// faultBatchIterator is the columnar twin: same hook, consulted once
// per batch.
type faultBatchIterator struct {
	in    BatchIterator
	fault func(stage string) error
}

func (f *faultBatchIterator) Columns() []string { return f.in.Columns() }

func (f *faultBatchIterator) Next(ctx context.Context) (*Batch, error) {
	if err := f.fault("next"); err != nil {
		return nil, err
	}
	return f.in.Next(ctx)
}

func (f *faultBatchIterator) Close() error { return f.in.Close() }
