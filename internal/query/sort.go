package query

import (
	"container/heap"
	"context"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Sort wraps an iterator with an ORDER BY stage. With limit > 0 it
// keeps a bounded top-K heap — memory never exceeds limit rows no
// matter how many the input yields, and the stage subsumes the LIMIT —
// otherwise it buffers and sorts the full input. Either way the input
// is drained on the first Next and closed eagerly, and the comparator
// is a total order (keys, then the whole row as tiebreak), so the
// emitted order is byte-identical regardless of the arrival order a
// parallel fan-in produced. Close releases the buffered rows; it is
// idempotent, and the backing array is dropped as soon as the last row
// is emitted rather than held until Close.
func Sort(in RowIterator, keys []OrderKey, limit int) RowIterator {
	return SortWithBudget(in, keys, limit, nil)
}

// SortWithBudget is Sort with a memory budget: every row admitted to
// the buffer is charged against it, so an unbounded ORDER BY over a
// budgeted query fails fast with ErrBudgetExceeded instead of
// buffering the whole input. A nil budget is unlimited.
func SortWithBudget(in RowIterator, keys []OrderKey, limit int, budget *MemBudget) RowIterator {
	if len(keys) == 0 {
		return in
	}
	return &sortIterator{in: in, limit: limit, cmp: rowComparator(in.Columns(), keys), budget: budget}
}

// SortBatches wraps a batch stream with the same ORDER BY stage: the
// fill drains whole batches into the identical bounded top-K heap, and
// under a limit each candidate row is compared through a reused scratch
// row and only materialized when it is actually admitted — evicted rows
// never allocate. The output is row-shaped (sort is where the columnar
// pipeline re-rowifies: the heap holds rows either way).
func SortBatches(in BatchIterator, keys []OrderKey, limit int) RowIterator {
	return SortBatchesWithBudget(in, keys, limit, nil)
}

// SortBatchesWithBudget is SortBatches with a memory budget; see
// SortWithBudget.
func SortBatchesWithBudget(in BatchIterator, keys []OrderKey, limit int, budget *MemBudget) RowIterator {
	if len(keys) == 0 {
		return Rows(in)
	}
	return &sortIterator{bin: in, limit: limit, cmp: rowComparator(in.Columns(), keys), budget: budget}
}

// sortIterator is the sort stage: a pipeline breaker that fills its
// buffer from the input on first use, then serves rows from it. Exactly
// one of in/bin is set — the stage consumes rows or batches, and emits
// rows either way.
type sortIterator struct {
	in    RowIterator
	bin   BatchIterator
	limit int
	cmp   func(a, b Row) int
	// budget, when set, is charged one row per buffered row and
	// released as rows are emitted — the memory-bound enforcement of
	// the admission layer. charged tracks the stage's outstanding
	// charge (consumer-side state, no locking needed).
	budget  *MemBudget
	charged int

	buf    []Row
	pos    int
	filled bool
	// maxHeld is the buffer's high-water mark — the top-K memory bound
	// the tests assert and the golake_query_sort_heap_rows metric
	// observes. Atomic so Stats snapshots race-cleanly with fill.
	maxHeld atomic.Int64
	// fillNs accumulates wall time spent draining and sorting the input
	// — the "sort" trace span. Atomic for the same reason.
	fillNs atomic.Int64
	err    error
	closed bool
	// inClosed tracks whether the input was already released (it is
	// closed eagerly once drained, before the consumer sees a row).
	inClosed bool
}

func (s *sortIterator) Columns() []string {
	if s.bin != nil {
		return s.bin.Columns()
	}
	return s.in.Columns()
}

func (s *sortIterator) Next(ctx context.Context) (Row, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, io.EOF
	}
	// Checked even when serving from the filled buffer: cancellation
	// must surface between rows here exactly as in every other stage.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !s.filled {
		if err := s.fill(ctx); err != nil {
			return nil, err
		}
	}
	if s.pos >= len(s.buf) {
		// Drop the backing array as soon as the stream is exhausted —
		// a consumer that keeps the iterator around (or forgets Close)
		// no longer pins the sorted result.
		s.buf = nil
		return nil, io.EOF
	}
	row := s.buf[s.pos]
	s.buf[s.pos] = nil
	s.pos++
	if s.charged > 0 {
		s.budget.Release(1)
		s.charged--
	}
	return row, nil
}

// fill drains the input into the buffer (bounded by the top-K heap
// when a limit is set), sorts, and releases the input. A per-call
// context cancellation is transient — the partial buffer is kept and a
// later Next with a live context resumes the drain — while any other
// input error is sticky and releases everything.
func (s *sortIterator) fill(ctx context.Context) error {
	start := time.Now()
	defer func() { s.fillNs.Add(int64(time.Since(start))) }()
	h := rowHeap{rows: s.buf, cmp: s.cmp}
	var err error
	if s.bin != nil {
		err = s.fillFromBatches(ctx, &h)
	} else {
		err = s.fillFromRows(ctx, &h)
	}
	if err != nil {
		if ctx.Err() != nil {
			s.buf = h.rows
			return err
		}
		s.err = err
		s.buf = nil
		s.budget.Release(s.charged)
		s.charged = 0
		s.closeIn()
		return err
	}
	s.buf = h.rows
	s.closeIn()
	sort.Slice(s.buf, func(i, j int) bool { return s.cmp(s.buf[i], s.buf[j]) < 0 })
	s.filled = true
	return nil
}

// fillFromRows drains the row input into the heap.
func (s *sortIterator) fillFromRows(ctx context.Context, h *rowHeap) error {
	for {
		row, err := s.in.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.admit(h, row, nil); err != nil {
			return err
		}
	}
}

// fillFromBatches drains the batch input into the heap. Candidate rows
// are staged through one reused scratch row; admit clones only the
// rows that actually enter the heap, so under a top-K limit the
// (input - k) evicted rows cost zero allocations.
func (s *sortIterator) fillFromBatches(ctx context.Context, h *rowHeap) error {
	var scratch Row
	for {
		b, err := s.bin.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if scratch == nil {
			scratch = make(Row, len(b.Columns()))
		}
		for i, n := 0, b.Len(); i < n; i++ {
			b.CopyRow(scratch, i)
			if err := s.admit(h, scratch, func() Row { return b.Row(i) }); err != nil {
				return err
			}
		}
	}
}

// admit offers one row to the heap under the top-K bound. clone, when
// set, materializes an owned copy of the row on admission (the batch
// fill's scratch row is reused and must not be retained as-is). Heap
// growth is charged against the memory budget — a top-K replacement
// is footprint-neutral and charges nothing — and an exceeded budget
// aborts the fill.
func (s *sortIterator) admit(h *rowHeap, row Row, clone func() Row) error {
	if s.limit > 0 && len(h.rows) >= s.limit {
		// Bounded top-K: only admit rows that beat the current
		// worst, evicting it — the heap never exceeds limit rows.
		if s.cmp(row, h.rows[0]) < 0 {
			if clone != nil {
				row = clone()
			}
			h.rows[0] = row
			heap.Fix(h, 0)
		}
	} else {
		if err := s.budget.Acquire(1); err != nil {
			return err
		}
		s.charged++
		if clone != nil {
			row = clone()
		}
		heap.Push(h, row)
	}
	if n := int64(len(h.rows)); n > s.maxHeld.Load() {
		s.maxHeld.Store(n)
	}
	return nil
}

func (s *sortIterator) closeIn() {
	if !s.inClosed {
		s.inClosed = true
		if s.bin != nil {
			_ = s.bin.Close()
		} else {
			_ = s.in.Close()
		}
	}
}

func (s *sortIterator) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.buf = nil
	s.budget.Release(s.charged)
	s.charged = 0
	if s.inClosed {
		return nil
	}
	s.inClosed = true
	if s.bin != nil {
		return s.bin.Close()
	}
	return s.in.Close()
}

// rowHeap is a max-heap under the row comparator: the worst row kept
// sits at the root, so top-K eviction is O(log k).
type rowHeap struct {
	rows []Row
	cmp  func(a, b Row) int
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool { return h.cmp(h.rows[i], h.rows[j]) > 0 }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(Row)) }
func (h *rowHeap) Pop() any {
	n := len(h.rows) - 1
	r := h.rows[n]
	h.rows = h.rows[:n]
	return r
}

// rowComparator builds the total-order row comparator for the keys
// against a header: compare key by key, then fall back to the whole
// row, so no two distinct rows ever tie and sorted output is unique. A
// key column missing from the header compares as the empty cell.
func rowComparator(cols []string, keys []OrderKey) func(a, b Row) int {
	idx := make([]int, len(keys))
	colAt := make(map[string]int, len(cols))
	for i, c := range cols {
		colAt[c] = i
	}
	for i, k := range keys {
		if j, ok := colAt[k.Column]; ok {
			idx[i] = j
		} else {
			idx[i] = -1
		}
	}
	return func(a, b Row) int {
		for i, k := range keys {
			var av, bv string
			if j := idx[i]; j >= 0 {
				if j < len(a) {
					av = a[j]
				}
				if j < len(b) {
					bv = b[j]
				}
			}
			if c := compareCells(av, bv); c != 0 {
				if k.Desc {
					return -c
				}
				return c
			}
		}
		// Tiebreak on the remaining cells so the order is total: rows
		// equal under every key still sort deterministically.
		for i := 0; i < len(a) && i < len(b); i++ {
			if c := strings.Compare(a[i], b[i]); c != 0 {
				return c
			}
		}
		return len(a) - len(b)
	}
}

// compareCells orders two cells: numeric cells compare numerically and
// sort before non-numeric ones; everything else is lexicographic. The
// type rank keeps the relation transitive (plain "numeric when both
// parse" is not: 2 < 10 < "1a" < 2 lexicographically), which the
// deterministic-output guarantee depends on.
func compareCells(a, b string) int {
	fa, aNum := parseNumericCell(a)
	fb, bNum := parseNumericCell(b)
	switch {
	case aNum && bNum:
		if fa < fb {
			return -1
		}
		if fa > fb {
			return 1
		}
		// Numerically equal but textually distinct ("1" vs "1.0"):
		// settle by text so the order stays total.
		return strings.Compare(a, b)
	case aNum:
		return -1
	case bNum:
		return 1
	default:
		return strings.Compare(a, b)
	}
}

// parseNumericCell parses a cell as a comparable number; NaN is
// excluded because it breaks comparator transitivity.
func parseNumericCell(s string) (float64, bool) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}
