package query

import (
	"strconv"

	"golake/internal/table"
)

// Bitmap is a fixed-length bit set — the null and validity masks of the
// columnar batch layer. The zero value is unusable; allocate with
// NewBitmap.
type Bitmap struct {
	bits []uint64
	n    int
}

// NewBitmap returns an all-zero bitmap of n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap's length in bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.bits[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool { return b.bits[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.bits {
		b.bits[i] = ^uint64(0)
	}
	// Clear the tail past n so Count stays exact.
	if rem := uint(b.n) & 63; rem != 0 && len(b.bits) > 0 {
		b.bits[len(b.bits)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Vector is one typed column of a Batch: a run of cells with the
// column's inferred kind (int64 / float64 / string, per
// internal/table's inference), a null bitmap, and lazily materialized
// typed mirrors for the numeric kinds.
//
// The string cells are authoritative: they are zero-copy references
// into the store snapshot and carry the exact wire representation, so
// serialization from a vector is byte-identical to the row pipeline no
// matter how a numeric cell was spelled ("007", "1.0", "+3"). The
// typed mirrors — Ints and Floats — are parsed once per vector and
// power vectorized predicate evaluation and future typed operators;
// cells that fail to parse are marked invalid in the returned bitmap
// and fall back to string semantics, exactly as the row pipeline's
// per-row Predicate.Matches does.
//
// Vectors flow through single-consumer pipelines; the lazy mirrors are
// not synchronized.
type Vector struct {
	// Kind is the column's inferred type (table.KindInt, KindFloat,
	// KindString, ...). It is advisory: accessors work on any vector.
	Kind table.Kind

	// cells is the backing run; nil marks an all-null pad vector (a
	// projected column the source lacks).
	cells []string
	n     int

	ints    []int64
	intOK   *Bitmap
	floats  []float64
	floatOK *Bitmap
	nulls   *Bitmap
}

// NewVector wraps a cell run as a vector of the given kind. The slice
// is referenced, not copied.
func NewVector(kind table.Kind, cells []string) *Vector {
	return &Vector{Kind: kind, cells: cells, n: len(cells)}
}

// NullVector returns an all-null pad vector of n cells — what
// projection and union substitute for a column a source lacks. Its
// cells read as the empty string, the pipeline's null encoding.
func NullVector(n int) *Vector {
	return &Vector{Kind: table.KindUnknown, n: n}
}

// Len returns the vector's cell count.
func (v *Vector) Len() int { return v.n }

// Cell returns cell i in its wire representation ("" for nulls).
func (v *Vector) Cell(i int) string {
	if v.cells == nil {
		return ""
	}
	return v.cells[i]
}

// Cells returns the backing run, or nil for a pad vector. Callers must
// not mutate it: it may alias a live store snapshot.
func (v *Vector) Cells() []string { return v.cells }

// Nulls returns the null bitmap (a set bit marks a null cell),
// computed on first use. The pipeline encodes null as the empty cell;
// a pad vector is all-null.
func (v *Vector) Nulls() *Bitmap {
	if v.nulls == nil {
		v.nulls = NewBitmap(v.n)
		if v.cells == nil {
			v.nulls.SetAll()
		} else {
			for i, c := range v.cells {
				if c == "" {
					v.nulls.Set(i)
				}
			}
		}
	}
	return v.nulls
}

// Ints returns the int64 mirror and its validity bitmap (a set bit
// marks a cell that parsed), materialized on first use.
func (v *Vector) Ints() ([]int64, *Bitmap) {
	if v.intOK == nil {
		v.ints = make([]int64, v.n)
		v.intOK = NewBitmap(v.n)
		for i, c := range v.cells {
			if x, err := strconv.ParseInt(c, 10, 64); err == nil {
				v.ints[i] = x
				v.intOK.Set(i)
			}
		}
	}
	return v.ints, v.intOK
}

// Floats returns the float64 mirror and its validity bitmap,
// materialized on first use. Parsing matches the row pipeline's
// predicate semantics exactly (plain strconv.ParseFloat, no trimming),
// so vectorized filters keep byte-identical selectivity.
func (v *Vector) Floats() ([]float64, *Bitmap) {
	if v.floatOK == nil {
		v.floats = make([]float64, v.n)
		v.floatOK = NewBitmap(v.n)
		for i, c := range v.cells {
			if f, err := strconv.ParseFloat(c, 64); err == nil {
				v.floats[i] = f
				v.floatOK.Set(i)
			}
		}
	}
	return v.floats, v.floatOK
}

// AppendTo appends the vector's cells to dst in selection order (every
// cell when sel is nil) — the column-wise drain CollectBatches and the
// serialization fast paths use instead of materializing rows.
func (v *Vector) AppendTo(dst []string, sel []int) []string {
	if v.cells == nil {
		n := v.n
		if sel != nil {
			n = len(sel)
		}
		for i := 0; i < n; i++ {
			dst = append(dst, "")
		}
		return dst
	}
	if sel == nil {
		return append(dst, v.cells...)
	}
	for _, i := range sel {
		dst = append(dst, v.cells[i])
	}
	return dst
}
