package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"golake/internal/storage/polystore"
)

func TestMemBudgetAccounting(t *testing.T) {
	b := NewMemBudget(10)
	if err := b.Acquire(7); err != nil {
		t.Fatalf("acquire 7/10: %v", err)
	}
	if err := b.Acquire(4); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("acquire 11/10 = %v, want ErrBudgetExceeded", err)
	}
	// The failed acquire must have rolled its charge back.
	if err := b.Acquire(3); err != nil {
		t.Fatalf("acquire 10/10 after rollback: %v", err)
	}
	b.Release(10)
	if err := b.Acquire(10); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if hw := b.HighWater(); hw != 10 {
		t.Errorf("high water = %d, want 10", hw)
	}
	if b.Limit() != 10 {
		t.Errorf("limit = %d", b.Limit())
	}
}

func TestMemBudgetNilIsUnlimited(t *testing.T) {
	var b *MemBudget
	if err := b.Acquire(1 << 30); err != nil {
		t.Fatalf("nil budget acquire: %v", err)
	}
	b.Release(1 << 30)
	if NewMemBudget(0) != nil {
		t.Error("NewMemBudget(0) should be nil (unlimited)")
	}
}

// TestSortBudgetFailsFast: an unbounded ORDER BY over more rows than
// the budget allows fails with ErrBudgetExceeded instead of buffering
// the whole input.
func TestSortBudgetFailsFast(t *testing.T) {
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = Row{fmt.Sprintf("%03d", 99-i)}
	}
	in := NewSliceIterator([]string{"v"}, rows)
	budget := NewMemBudget(50)
	s := SortWithBudget(in, []OrderKey{{Column: "v"}}, 0, budget)
	_, err := s.Next(context.Background())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Next = %v, want ErrBudgetExceeded", err)
	}
	_ = s.Close()
	// The failed fill must have released its charge.
	if err := budget.Acquire(50); err != nil {
		t.Fatalf("budget still charged after failed sort: %v", err)
	}
}

// TestSortTopKUnderBudget: a top-K sort whose heap stays under the
// budget completes even over a much larger input, and the charge is
// returned as rows are emitted.
func TestSortTopKUnderBudget(t *testing.T) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{fmt.Sprintf("%04d", i)}
	}
	in := NewSliceIterator([]string{"v"}, rows)
	budget := NewMemBudget(10)
	s := SortWithBudget(in, []OrderKey{{Column: "v"}}, 10, budget)
	var got int
	for {
		_, err := s.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got++
	}
	if got != 10 {
		t.Errorf("rows = %d, want 10", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := budget.Acquire(10); err != nil {
		t.Fatalf("budget not fully released after drain: %v", err)
	}
}

// TestFanInBudgetSurfacesInBand: a parallel union whose queues exceed
// the budget surfaces ErrBudgetExceeded from Next and tears down
// leak-free.
func TestFanInBudgetSurfacesInBand(t *testing.T) {
	mk := func(n int) RowIterator {
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{fmt.Sprintf("%d", i)}
		}
		return NewSliceIterator([]string{"a"}, rows)
	}
	// Budget of 1 row: the very first queued batch overruns it.
	it := ParallelUnion(context.Background(), []RowIterator{mk(500), mk(500)}, nil,
		FanInOptions{Workers: 2, BufferRows: 64, Budget: NewMemBudget(1)})
	var err error
	for {
		_, err = it.Next(context.Background())
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("fan-in error = %v, want ErrBudgetExceeded", err)
	}
	if cerr := it.Close(); cerr != nil {
		t.Fatalf("Close after budget error: %v", cerr)
	}
}

// TestEngineBudgetEndToEnd: Request.MemoryRows flows through
// Engine.Query into the pipeline and an over-budget ORDER BY fails
// with the sentinel.
func TestEngineBudgetEndToEnd(t *testing.T) {
	e := testEngine(t, 200)
	st, err := e.Query(context.Background(), Request{
		SQL:        "SELECT v FROM rel:budget_rows ORDER BY v",
		MemoryRows: 20,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	_, err = st.Next(context.Background())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Next = %v, want ErrBudgetExceeded", err)
	}
	if p := st.Plan(); p.MemoryRows != 20 {
		t.Errorf("plan memory_rows = %d, want 20", p.MemoryRows)
	}
}

// TestEngineBudgetAllowsFittingQuery: the same query under a
// sufficient budget returns every row.
func TestEngineBudgetAllowsFittingQuery(t *testing.T) {
	e := testEngine(t, 100)
	st, err := e.Query(context.Background(), Request{
		SQL:        "SELECT v FROM rel:budget_rows ORDER BY v",
		MemoryRows: 500,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	var n int
	for {
		_, err := st.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != 100 {
		t.Errorf("rows = %d, want 100", n)
	}
}

// TestStreamDeadlineExpiresMidStream: a RowStream deadline in the past
// fails Next with context.DeadlineExceeded regardless of the per-call
// context.
func TestStreamDeadlineExpiresMidStream(t *testing.T) {
	e := testEngine(t, 10)
	st, err := e.Query(context.Background(), Request{SQL: "SELECT v FROM rel:budget_rows"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	if _, err := st.Next(context.Background()); err != nil {
		t.Fatalf("first row before deadline: %v", err)
	}
	st.SetDeadline(time.Now().Add(-time.Millisecond))
	_, err = st.Next(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next past deadline = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(st.Err(), context.DeadlineExceeded) {
		t.Errorf("stream Err() = %v", st.Err())
	}
}

// TestEngineFaultHook: the chaos hook fails the pipeline at the "open"
// and "next" stages on demand.
func TestEngineFaultHook(t *testing.T) {
	boom := errors.New("injected")
	e := testEngine(t, 10)
	e.Fault = func(stage string) error {
		if stage == "open" {
			return boom
		}
		return nil
	}
	if _, err := e.Query(context.Background(), Request{SQL: "SELECT v FROM rel:budget_rows"}); !errors.Is(err, boom) {
		t.Fatalf("open fault = %v, want injected", err)
	}

	var n int
	e.Fault = func(stage string) error {
		if stage == "next" {
			n++
			if n > 3 {
				return boom
			}
		}
		return nil
	}
	st, err := e.Query(context.Background(), Request{SQL: "SELECT v FROM rel:budget_rows"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	var rows int
	for {
		_, err := st.Next(context.Background())
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("Next = %v, want injected", err)
			}
			break
		}
		rows++
	}
	if rows != 3 {
		t.Errorf("rows before injected fault = %d, want 3", rows)
	}
}

// testEngine builds an engine over one relational table,
// "budget_rows", with n rows of a zero-padded "v" column.
func testEngine(t *testing.T, n int) *Engine {
	t.Helper()
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("v\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%05d\n", i)
	}
	if _, err := p.Ingest("raw/budget_rows.csv", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	return NewEngine(p)
}
