package query

import (
	"context"
	"io"
	"reflect"
	"testing"

	"golake/internal/storage/polystore"
	"golake/internal/table"
)

// countingIterator counts how many rows downstream stages pull — the
// probe for LIMIT short-circuiting.
type countingIterator struct {
	cols   []string
	rows   int
	pulled int
	closed bool
}

func (c *countingIterator) Columns() []string { return c.cols }

func (c *countingIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.pulled >= c.rows {
		return nil, io.EOF
	}
	c.pulled++
	return Row{"x"}, nil
}

func (c *countingIterator) Close() error {
	c.closed = true
	return nil
}

func drain(t *testing.T, it RowIterator) [][]string {
	t.Helper()
	var out [][]string
	for {
		row, err := it.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, row)
	}
}

func TestLimitShortCircuitsSource(t *testing.T) {
	src := &countingIterator{cols: []string{"a"}, rows: 100000}
	it := Limit(Union([]RowIterator{src}, nil), 10)
	rows := drain(t, it)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	if src.pulled != 10 {
		t.Errorf("source scanned %d rows for LIMIT 10, want exactly 10", src.pulled)
	}
	if !src.closed {
		t.Error("reaching the limit must close the source scan eagerly")
	}
}

func TestUnionNullPadsAndOrdersColumns(t *testing.T) {
	a := NewSliceIterator([]string{"city", "price"}, [][]string{{"ams", "10"}})
	b := NewSliceIterator([]string{"price", "stars"}, [][]string{{"20", "4"}})
	it := Union([]RowIterator{a, b}, nil)
	if got, want := it.Columns(), []string{"city", "price", "stars"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("union header = %v, want %v", got, want)
	}
	rows := drain(t, it)
	want := [][]string{{"ams", "10", ""}, {"", "20", "4"}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("union rows = %v, want %v", rows, want)
	}
}

func TestUnionProjectsExplicitColumns(t *testing.T) {
	a := NewSliceIterator([]string{"city", "price"}, [][]string{{"ams", "10"}})
	b := NewSliceIterator([]string{"stars"}, [][]string{{"4"}})
	it := Union([]RowIterator{a, b}, []string{"price", "stars"})
	rows := drain(t, it)
	want := [][]string{{"10", ""}, {"", "4"}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("projected union = %v, want %v", rows, want)
	}
}

func TestFilterMissingColumnMatchesNothing(t *testing.T) {
	in := NewSliceIterator([]string{"a"}, [][]string{{"1"}, {"2"}})
	it := Filter(in, []Predicate{{Column: "ghost", Op: OpEq, Value: "1"}})
	if rows := drain(t, it); len(rows) != 0 {
		t.Errorf("predicate on missing column yielded %v, want nothing", rows)
	}
}

func TestCancellationStopsStreamBetweenRows(t *testing.T) {
	src := &countingIterator{cols: []string{"a"}, rows: 1000}
	it := Union([]RowIterator{src}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := it.Next(ctx); err != nil {
		t.Fatalf("first row: %v", err)
	}
	cancel()
	if _, err := it.Next(ctx); err != context.Canceled {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !src.closed {
		t.Error("Close must release the source scan")
	}
}

func TestCloseMidStreamReleasesAllSources(t *testing.T) {
	a := &countingIterator{cols: []string{"a"}, rows: 10}
	b := &countingIterator{cols: []string{"a"}, rows: 10}
	it := Limit(Union([]RowIterator{a, b}, nil), 100)
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if !a.closed || !b.closed {
		t.Errorf("Close released a=%v b=%v, want both", a.closed, b.closed)
	}
}

// TestExecuteMatchesStreamCollect pins the contract that Execute is a
// pure collector over Stream: both paths must agree on a federated
// union with heterogeneous columns, predicates, and a limit.
func TestExecuteMatchesStreamCollect(t *testing.T) {
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest("raw/hotels_a.csv", []byte("city,price\nams,10\nparis,30\nrome,20\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest("raw/hotels_b.jsonl", []byte("{\"city\":\"oslo\",\"price\":15,\"stars\":4}\n{\"city\":\"bern\",\"price\":50}\n")); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)
	for _, sql := range []string{
		"SELECT * FROM rel:hotels_a, doc:hotels_b",
		"SELECT city, price FROM rel:hotels_a, doc:hotels_b WHERE price > 12 LIMIT 2",
		"SELECT city, stars FROM rel:hotels_a, doc:hotels_b",
	} {
		res, err := e.ExecuteSQL(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		it, err := e.StreamSQL(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: stream: %v", sql, err)
		}
		if got, want := it.Columns(), res.ColumnNames(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: stream header %v, execute header %v", sql, got, want)
		}
		rows := drain(t, it)
		if len(rows) != res.NumRows() {
			t.Fatalf("%s: stream %d rows, execute %d", sql, len(rows), res.NumRows())
		}
		for i, row := range rows {
			if !reflect.DeepEqual(row, res.Row(i)) {
				t.Errorf("%s: row %d stream %v, execute %v", sql, i, row, res.Row(i))
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamLimitBoundsRelationalScan proves LIMIT is enforced as an
// iterator stage over the real relational scan: the collected result
// is O(limit) even though the source table is large, and the engine
// never materializes the corpus (guarded indirectly by the benchmarks'
// allocs/op).
func TestStreamLimitBoundsRelationalScan(t *testing.T) {
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	big := table.New("big")
	big.Columns = []*table.Column{{Name: "id"}}
	for i := 0; i < 50000; i++ {
		_ = big.AppendRow([]string{"x"})
	}
	p.Rel.Create(big)
	it, err := NewEngine(p).StreamSQL(context.Background(), "SELECT id FROM rel:big LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if rows := drain(t, it); len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
}
