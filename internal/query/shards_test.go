package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"golake/internal/storage/polystore"
)

// shardEngine builds an engine over one 500-row relational table.
func shardEngine(t *testing.T) *Engine {
	t.Helper()
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("id,v\n")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i%7)
	}
	if _, err := p.Ingest("raw/sharded.csv", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(p)
	e.PushDown = true
	return e
}

func drainSorted(t *testing.T, st *RowStream) []string {
	t.Helper()
	var out []string
	for {
		row, err := st.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, strings.Join(row, "|"))
	}
	_ = st.Close()
	sort.Strings(out)
	return out
}

// TestShardedScanIdentity pins that range-partitioned parallel scans
// return exactly the unsharded result set, at several widths including
// shards > rows of some partitions.
func TestShardedScanIdentity(t *testing.T) {
	e := shardEngine(t)
	const sql = "SELECT id, v FROM rel:sharded WHERE v > 2"
	base, err := e.Query(context.Background(), Request{SQL: sql, FanIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := drainSorted(t, base)
	if len(want) == 0 {
		t.Fatal("fixture returned no rows")
	}
	for _, shards := range []int{1, 3, 8, 64} {
		st, err := e.Query(context.Background(), Request{SQL: sql, Shards: shards, FanIn: 8})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := drainSorted(t, st); strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("shards=%d: %d rows, want %d identical rows", shards, len(got), len(want))
		}
	}
}

// TestShardedScanOrdered pins byte-identity under ORDER BY: the sort
// stage makes sharded output deterministic, equal to the sequential
// scan byte for byte.
func TestShardedScanOrdered(t *testing.T) {
	e := shardEngine(t)
	const sql = "SELECT id, v FROM rel:sharded ORDER BY id LIMIT 50"
	collect := func(req Request) string {
		st, err := e.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for {
			row, err := st.Next(context.Background())
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, strings.Join(row, ","))
		}
		_ = st.Close()
		return strings.Join(out, "\n")
	}
	want := collect(Request{SQL: sql, FanIn: 1})
	got := collect(Request{SQL: sql, Shards: 6, FanIn: 6})
	if got != want {
		t.Errorf("ordered sharded output diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestShardedPlan pins the EXPLAIN surface: the access path names the
// shard count and the fan-in width counts each shard as a source.
func TestShardedPlan(t *testing.T) {
	e := shardEngine(t)
	st, err := e.Query(context.Background(), Request{
		SQL: "SELECT id FROM rel:sharded", Shards: 4, FanIn: 8, Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	plan := st.Plan()
	if len(plan.Sources) != 1 {
		t.Fatalf("sources = %+v", plan.Sources)
	}
	if !strings.Contains(plan.Sources[0].Access, "4 range shards") {
		t.Errorf("access = %q, want range-shard note", plan.Sources[0].Access)
	}
	if plan.FanIn != 4 {
		t.Errorf("fan-in = %d, want 4 (bounded by effective source count)", plan.FanIn)
	}
}

// TestShardedBatchPipeline keeps the columnar path correct under
// sharding: an all-relational query with shards still batches, with the
// identical result set.
func TestShardedBatchPipeline(t *testing.T) {
	e := shardEngine(t)
	const sql = "SELECT id, v FROM rel:sharded WHERE v = 3"
	base, err := e.Query(context.Background(), Request{SQL: sql, FanIn: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := drainSorted(t, base)
	st, err := e.Query(context.Background(), Request{SQL: sql, Shards: 5, FanIn: 5, BatchRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !st.BatchMode() {
		t.Error("sharded relational query fell out of batch mode")
	}
	if got := drainSorted(t, st); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("batch sharded rows = %d, want %d", len(got), len(want))
	}
}
