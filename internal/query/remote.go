package query

import (
	"context"
	"strings"
)

// RemoteSpec is one remote sub-query: the serialized statement the
// member lake should execute plus the identity it runs as. The engine
// builds the statement from the plan's pushdown decision (predicates,
// projection, and — when a limit bounds the result — order and limit),
// so a member lake sees an ordinary SELECT and applies its own pushdown
// locally.
type RemoteSpec struct {
	// SQL is the pushed-down statement, e.g.
	// "SELECT id, total FROM orders WHERE total > 10 LIMIT 5".
	SQL string
	// User is the requesting identity, forwarded so the member lake
	// authorizes the sub-query as the original caller — a remote hop is
	// not an auth bypass.
	User string
}

// RemoteOpener opens streaming scans against one remote member lake.
// Implementations (internal/remote) speak the /v1/query NDJSON protocol;
// the engine only requires the returned iterator to know its header
// eagerly (Columns callable before the first Next), because the union
// stage computes the SELECT * result header from the source headers.
type RemoteOpener interface {
	// OpenStream executes the sub-query on the member lake. The stream
	// must honor ctx: cancellation aborts the remote request, and Close
	// releases the connection.
	OpenStream(ctx context.Context, spec RemoteSpec) (RowIterator, error)
	// Describe returns a human-readable endpoint (base URL) for plans.
	Describe() string
}

// remoteMember splits a resolved remote source name ("member:dataset",
// the canonical form resolveKind produces) back into its parts.
func remoteMember(name string) (member, dataset string) {
	member, dataset, _ = strings.Cut(name, ":")
	return member, dataset
}

// remoteStatement builds the sub-query pushed to a member lake for one
// FROM item. With pushdown the statement carries the predicates and the
// projection (extended with predicate columns, so the central batch
// filter can re-evaluate them without a second fetch); when a limit
// bounds the result, ORDER BY + LIMIT ride along — each member's top-k
// is a superset of its contribution to the global top-k, so the central
// sort stage stays correct while members ship k rows instead of all.
// Without pushdown the member streams the bare dataset and every stage
// runs centrally.
func (e *Engine) remoteStatement(dataset string, q *Query, env execEnv) string {
	rq := Query{Sources: []string{dataset}}
	if e.PushDown {
		rq.Columns = withPredicateColumns(q)
		rq.Where = q.Where
		if env.limit > 0 {
			rq.Order = env.order
			rq.Limit = env.limit
		}
	}
	return rq.String()
}

// hasRemoteSource reports whether any FROM item resolves to a remote
// member lake — those headers are unknowable without opening the
// stream, so explain-time SELECT * header validation is skipped.
func (e *Engine) hasRemoteSource(q *Query) bool {
	for _, src := range q.Sources {
		if kind, _, err := e.resolveKind(src); err == nil && kind == "remote" {
			return true
		}
	}
	return false
}
