// Package query implements the exploration tier's heterogeneous data
// querying (Sec. 7.2 of the survey): one unified query language
// executed over the polystore, in the manner of Constance, CoreDB,
// Ontario and Squerall — the engine decomposes a query into per-store
// subqueries, pushes selection predicates down into stores that can
// evaluate them, executes with store-native access paths, and merges
// subquery results into a single table.
//
// The language is a minimal SQL dialect:
//
//	SELECT a, b FROM rel:orders WHERE status = 'open' AND total > 10 LIMIT 5
//	SELECT * FROM doc:events WHERE kind = 'click'
//	SELECT * FROM graph:person
//	SELECT city, price FROM rel:hotels_a, rel:hotels_b   -- union-all
//	SELECT city, price FROM rel:hotels_a ORDER BY price DESC, city LIMIT 3
//	EXPLAIN SELECT city FROM rel:hotels_a, doc:hotels_b WHERE price > 40
//
// Source prefixes select the member store: rel: (relational), doc:
// (document), graph: (node label), file: (raw object listing). A bare
// name resolves against the stores in that order. String literals
// escape an embedded quote by doubling it ('o”brien').
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax classifies statements the dialect cannot parse; every
// parser error wraps it so callers test with errors.Is instead of
// matching message text.
var ErrSyntax = errors.New("query: syntax error")

func synErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSyntax, fmt.Sprintf(format, args...))
}

// CmpOp is a predicate comparison operator.
type CmpOp string

// Supported comparison operators.
const (
	OpEq  CmpOp = "="
	OpNe  CmpOp = "!="
	OpGt  CmpOp = ">"
	OpGte CmpOp = ">="
	OpLt  CmpOp = "<"
	OpLte CmpOp = "<="
)

// Predicate is one WHERE conjunct.
type Predicate struct {
	Column string
	Op     CmpOp
	Value  string
	// Numeric is true when Value parsed as a number; comparisons then
	// run numerically with string fallback.
	Numeric bool
}

// OrderKey is one ORDER BY sort key. Cells where both sides parse as
// numbers compare numerically; numeric cells sort before non-numeric
// ones; everything else compares lexicographically — a total order, so
// sorted output is deterministic regardless of arrival order.
type OrderKey struct {
	Column string
	Desc   bool
}

// String renders the key in dialect form.
func (k OrderKey) String() string {
	if k.Desc {
		return k.Column + " DESC"
	}
	return k.Column
}

// Query is a parsed statement.
type Query struct {
	// Columns to project; empty means SELECT *.
	Columns []string
	// Sources are the FROM items, possibly prefixed (rel:, doc:,
	// graph:, file:).
	Sources []string
	// Where holds the conjunctive predicates.
	Where []Predicate
	// Order holds the ORDER BY keys in significance order; empty means
	// no sort stage.
	Order []OrderKey
	// Limit bounds the result rows (0 = unlimited).
	Limit int
	// Explain marks an EXPLAIN statement: plan the query, run nothing.
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: run the query to completion,
	// discard the rows, and annotate the plan with live timings and
	// counters. Implies Explain.
	Analyze bool
}

// Parse parses the minimal SQL dialect.
func Parse(s string) (*Query, error) {
	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parse()
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expectKeyword(kw string) error {
	if !strings.EqualFold(p.peek(), kw) {
		return synErrf("expected %s, got %q", kw, p.peek())
	}
	p.pos++
	return nil
}

func (p *parser) parse() (*Query, error) {
	q := &Query{}
	if strings.EqualFold(p.peek(), "EXPLAIN") {
		p.next()
		q.Explain = true
		if strings.EqualFold(p.peek(), "ANALYZE") {
			p.next()
			q.Analyze = true
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Projection list.
	if p.peek() == "*" {
		p.next()
	} else {
		for {
			col := p.next()
			if col == "" {
				return nil, synErrf("missing column name")
			}
			q.Columns = append(q.Columns, col)
			if p.peek() != "," {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		src := p.next()
		if src == "" {
			return nil, synErrf("missing source")
		}
		q.Sources = append(q.Sources, src)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if strings.EqualFold(p.peek(), "WHERE") {
		p.next()
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !strings.EqualFold(p.peek(), "AND") {
				break
			}
			p.next()
		}
	}
	if strings.EqualFold(p.peek(), "ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col := p.next()
			if col == "" || col == "," {
				return nil, synErrf("missing ORDER BY column")
			}
			key := OrderKey{Column: col}
			switch {
			case strings.EqualFold(p.peek(), "DESC"):
				key.Desc = true
				p.next()
			case strings.EqualFold(p.peek(), "ASC"):
				p.next()
			}
			q.Order = append(q.Order, key)
			if p.peek() != "," {
				break
			}
			p.next()
		}
	}
	if strings.EqualFold(p.peek(), "LIMIT") {
		p.next()
		n, err := strconv.Atoi(p.next())
		if err != nil || n < 0 {
			return nil, synErrf("bad LIMIT")
		}
		q.Limit = n
	}
	if p.pos != len(p.toks) {
		return nil, synErrf("trailing tokens near %q", p.peek())
	}
	return q, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	col := p.next()
	if col == "" {
		return Predicate{}, synErrf("missing predicate column")
	}
	op := CmpOp(p.next())
	switch op {
	case OpEq, OpNe, OpGt, OpGte, OpLt, OpLte:
	default:
		return Predicate{}, synErrf("bad operator %q", op)
	}
	val := p.next()
	if val == "" {
		return Predicate{}, synErrf("missing predicate value")
	}
	pred := Predicate{Column: col, Op: op}
	if strings.HasPrefix(val, "'") {
		// A string-literal token: the tokenizer keeps the opening quote
		// as a marker and has already unescaped the content, so quoted
		// values — even numeric-looking ones like '10' — stay string
		// predicates and survive a String() round-trip.
		pred.Value = val[1:]
	} else {
		pred.Value = val
		if _, err := strconv.ParseFloat(val, 64); err == nil {
			pred.Numeric = true
		}
	}
	return pred, nil
}

// tokenize splits on whitespace, keeping quoted strings and separating
// commas and comparison operators. A string literal is tokenized as its
// unescaped content behind a single leading quote marker (” inside a
// literal escapes one quote), so downstream consumers never re-guess
// where the literal ended.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, ",")
			i++
		case c == '\'':
			var lit strings.Builder
			lit.WriteByte('\'')
			j := i + 1
			for {
				if j >= len(s) {
					return nil, synErrf("unterminated string literal")
				}
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						lit.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				lit.WriteByte(s[j])
				j++
			}
			toks = append(toks, lit.String())
			i = j + 1
		case c == '!' || c == '>' || c == '<' || c == '=':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, s[i:i+2])
				i += 2
			} else {
				toks = append(toks, string(c))
				i++
			}
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r,'!><=", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

// String renders the query back into the dialect; Parse(q.String())
// yields an equivalent query. String values are quoted with embedded
// quotes doubled, so values containing ' — and numeric-looking values
// that arrived quoted — round-trip unambiguously.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Explain {
		sb.WriteString("EXPLAIN ")
		if q.Analyze {
			sb.WriteString("ANALYZE ")
		}
	}
	sb.WriteString("SELECT ")
	if len(q.Columns) == 0 {
		sb.WriteString("*")
	} else {
		sb.WriteString(strings.Join(q.Columns, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(strings.Join(q.Sources, ", "))
	if len(q.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if len(q.Order) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, k := range q.Order {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.String())
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// quoteValue renders a string literal, doubling embedded quotes.
func quoteValue(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// String renders the predicate in dialect form (EXPLAIN plans reuse
// it to describe pushed-down predicates).
func (pr Predicate) String() string {
	v := pr.Value
	if !pr.Numeric {
		v = quoteValue(v)
	}
	return pr.Column + " " + string(pr.Op) + " " + v
}

// Matches evaluates the predicate against a string cell.
func (pr Predicate) Matches(cell string) bool {
	if pr.Numeric {
		a, errA := strconv.ParseFloat(cell, 64)
		b, errB := strconv.ParseFloat(pr.Value, 64)
		if errA == nil && errB == nil {
			switch pr.Op {
			case OpEq:
				return a == b
			case OpNe:
				return a != b
			case OpGt:
				return a > b
			case OpGte:
				return a >= b
			case OpLt:
				return a < b
			case OpLte:
				return a <= b
			}
		}
		// fall through to string comparison when the cell is not
		// numeric
	}
	switch pr.Op {
	case OpEq:
		return cell == pr.Value
	case OpNe:
		return cell != pr.Value
	case OpGt:
		return cell > pr.Value
	case OpGte:
		return cell >= pr.Value
	case OpLt:
		return cell < pr.Value
	case OpLte:
		return cell <= pr.Value
	}
	return false
}
