package query

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"golake/internal/storage/polystore"
)

// federatedEngine builds an engine over one source per member-store
// kind (relational, document, graph) sharing overlapping headers, so
// fan-in is exercised across genuinely heterogeneous scans.
func federatedEngine(t *testing.T) *Engine {
	t.Helper()
	p, err := polystore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest("raw/hotels_a.csv", []byte("city,price\nams,10\nparis,30\nrome,20\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest("raw/hotels_b.jsonl", []byte("{\"city\":\"oslo\",\"price\":15,\"stars\":4}\n{\"city\":\"bern\",\"price\":50}\n")); err != nil {
		t.Fatal(err)
	}
	graph := []byte(`{"nodes":[
		{"id":"h1","label":"hotel","props":{"city":"kyoto","price":70}},
		{"id":"h2","label":"hotel","props":{"city":"lima","price":25}}],
		"edges":[]}`)
	if _, err := p.IngestAs("raw/hotels_g.json", graph, polystore.TargetGraph); err != nil {
		t.Fatal(err)
	}
	return NewEngine(p)
}

// safeCountingIterator is a goroutine-safe counting source: pullers
// read it from their own goroutines, the test asserts on the counters.
type safeCountingIterator struct {
	cols   []string
	rows   int
	prefix string
	pulled atomic.Int64
	closes atomic.Int64
}

func (c *safeCountingIterator) Columns() []string { return c.cols }

func (c *safeCountingIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := c.pulled.Add(1)
	if int(n) > c.rows {
		c.pulled.Add(-1)
		return nil, io.EOF
	}
	return Row{fmt.Sprintf("%s%d", c.prefix, n)}, nil
}

func (c *safeCountingIterator) Close() error {
	c.closes.Add(1)
	return nil
}

// gatedIterator blocks every Next until the gate opens — the synthetic
// stalled member store.
type gatedIterator struct {
	cols   []string
	gate   chan struct{}
	rows   []Row
	pos    int
	closes atomic.Int64
}

func (g *gatedIterator) Columns() []string { return g.cols }

func (g *gatedIterator) Next(ctx context.Context) (Row, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if g.pos >= len(g.rows) {
		return nil, io.EOF
	}
	row := g.rows[g.pos]
	g.pos++
	return row, nil
}

func (g *gatedIterator) Close() error {
	g.closes.Add(1)
	return nil
}

// erroringIterator yields good rows then a terminal error.
type erroringIterator struct {
	cols   []string
	good   int
	err    error
	pos    int
	closes atomic.Int64
}

func (e *erroringIterator) Columns() []string { return e.cols }

func (e *erroringIterator) Next(ctx context.Context) (Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.pos >= e.good {
		return nil, e.err
	}
	e.pos++
	return Row{"ok"}, nil
}

func (e *erroringIterator) Close() error {
	e.closes.Add(1)
	return nil
}

func sortedRows(rows [][]string) [][]string {
	out := append([][]string(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
	})
	return out
}

// TestParallelUnionSetEqualsSequential pins the semantics contract:
// across fan-in widths and buffer sizes, the parallel union yields
// exactly the sequential union's header and row multiset —
// heterogeneous headers, null padding, and explicit projections
// included. Only the interleaving may differ.
func TestParallelUnionSetEqualsSequential(t *testing.T) {
	mkSources := func() []RowIterator {
		return []RowIterator{
			NewSliceIterator([]string{"city", "price"}, [][]string{{"ams", "10"}, {"rome", "20"}}),
			NewSliceIterator([]string{"price", "stars"}, [][]string{{"30", "4"}, {"15", "2"}, {"50", "5"}}),
			NewSliceIterator([]string{"city"}, [][]string{{"oslo"}}),
			NewSliceIterator([]string{"stars", "city"}, [][]string{{"1", "bern"}}),
		}
	}
	for _, want := range [][]string{nil, {"price", "city"}} {
		seq := Union(mkSources(), want)
		wantHeader := seq.Columns()
		wantRows := sortedRows(drain(t, seq))
		if err := seq.Close(); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			for _, buffer := range []int{1, 3, 256} {
				it := ParallelUnion(context.Background(), mkSources(), want,
					FanInOptions{Workers: workers, BufferRows: buffer})
				if got := it.Columns(); !reflect.DeepEqual(got, wantHeader) {
					t.Fatalf("workers=%d buffer=%d: header %v, want %v", workers, buffer, got, wantHeader)
				}
				got := sortedRows(drain(t, it))
				if !reflect.DeepEqual(got, wantRows) {
					t.Errorf("workers=%d buffer=%d want=%v: rows %v, want %v", workers, buffer, want, got, wantRows)
				}
				if err := it.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestParallelUnionDegeneratesToSequential pins the fanin=1 contract:
// with Workers <= 1 the parallel constructor returns the sequential
// union itself, so ordering-sensitive callers keep byte-identical
// behavior.
func TestParallelUnionDegeneratesToSequential(t *testing.T) {
	sources := []RowIterator{
		NewSliceIterator([]string{"a"}, [][]string{{"1"}}),
		NewSliceIterator([]string{"a"}, [][]string{{"2"}}),
	}
	it := ParallelUnion(context.Background(), sources, nil, FanInOptions{Workers: 1})
	if _, ok := it.(*unionIterator); !ok {
		t.Fatalf("Workers=1 returned %T, want the sequential *unionIterator", it)
	}
	rows := drain(t, it)
	if want := [][]string{{"1"}, {"2"}}; !reflect.DeepEqual(rows, want) {
		t.Errorf("rows = %v, want %v (concatenation order)", rows, want)
	}
}

// TestParallelUnionSlowSourceDoesNotStallOthers is the point of the
// fan-in: while one source is fully blocked, every other source's rows
// must still reach the consumer.
func TestParallelUnionSlowSourceDoesNotStallOthers(t *testing.T) {
	gate := make(chan struct{})
	blocked := &gatedIterator{cols: []string{"a"}, gate: gate, rows: []Row{{"late"}}}
	fast1 := &safeCountingIterator{cols: []string{"a"}, rows: 5, prefix: "x"}
	fast2 := &safeCountingIterator{cols: []string{"a"}, rows: 5, prefix: "y"}
	it := ParallelUnion(context.Background(), []RowIterator{blocked, fast1, fast2}, nil,
		FanInOptions{Workers: 3, BufferRows: 8})
	defer it.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var got [][]string
	for len(got) < 10 { // all 10 fast rows, while the gate stays shut
		row, err := it.Next(ctx)
		if err != nil {
			t.Fatalf("fast rows stalled behind a blocked source: %v (got %d rows)", err, len(got))
		}
		got = append(got, row)
	}
	close(gate) // release the slow source; its row plus EOF must follow
	rest := [][]string{}
	for {
		row, err := it.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, row)
	}
	if !reflect.DeepEqual(rest, [][]string{{"late"}}) {
		t.Errorf("after releasing the gate got %v, want [[late]]", rest)
	}
}

// TestParallelUnionBackpressure pins the bounded-buffer contract: a
// paused consumer must cap how far a fast source can run ahead at
// roughly BufferRows, not drain it to completion.
func TestParallelUnionBackpressure(t *testing.T) {
	src := &safeCountingIterator{cols: []string{"a"}, rows: 100000, prefix: "x"}
	other := &safeCountingIterator{cols: []string{"a"}, rows: 1, prefix: "y"}
	const window = 32
	it := ParallelUnion(context.Background(), []RowIterator{src, other}, nil,
		FanInOptions{Workers: 2, BufferRows: window})
	defer it.Close()
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Give the puller every chance to overrun; the buffer must stop it.
	deadline := time.Now().Add(200 * time.Millisecond)
	var max int64
	for time.Now().Before(deadline) {
		if n := src.pulled.Load(); n > max {
			max = n
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The puller may hold one batch in hand plus a full queue: allow the
	// window, one extra batch, and the consumer-side batch in flight.
	limit := int64(window + 2*fanInBatchRows)
	if max > limit {
		t.Errorf("paused consumer: source ran %d rows ahead, want <= %d (BufferRows=%d)", max, limit, window)
	}
}

// TestParallelUnionErrorPropagatesAndClosesAll: the first source error
// surfaces in-band from Next (sticky), and by the time Close returns,
// every source — erroring, healthy, and not-yet-drained — is closed
// exactly once.
func TestParallelUnionErrorPropagatesAndClosesAll(t *testing.T) {
	boom := errors.New("store exploded")
	bad := &erroringIterator{cols: []string{"a"}, good: 2, err: boom}
	good := &safeCountingIterator{cols: []string{"a"}, rows: 100000, prefix: "x"}
	slow := &gatedIterator{cols: []string{"a"}, gate: make(chan struct{})}
	it := ParallelUnion(context.Background(), []RowIterator{bad, good, slow}, nil,
		FanInOptions{Workers: 3, BufferRows: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var err error
	for {
		if _, err = it.Next(ctx); err != nil {
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Next error = %v, want %v", err, boom)
	}
	if _, err2 := it.Next(ctx); !errors.Is(err2, boom) {
		t.Errorf("error must be sticky: second Next = %v", err2)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	for name, closes := range map[string]int64{
		"erroring": bad.closes.Load(), "healthy": good.closes.Load(), "blocked": slow.closes.Load(),
	} {
		if closes != 1 {
			t.Errorf("%s source closed %d times, want exactly 1", name, closes)
		}
	}
}

// TestParallelUnionCloseMidStreamIsLeakFree: an early Close must stop
// every puller (including ones blocked on a full buffer and ones
// blocked inside the source) and close every source.
func TestParallelUnionCloseMidStreamIsLeakFree(t *testing.T) {
	fast := &safeCountingIterator{cols: []string{"a"}, rows: 1000000, prefix: "x"}
	blocked := &gatedIterator{cols: []string{"a"}, gate: make(chan struct{})}
	it := ParallelUnion(context.Background(), []RowIterator{fast, blocked}, nil,
		FanInOptions{Workers: 2, BufferRows: 4})
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Close waits for the pullers via WaitGroup, so returning at all
	// proves they exited; -race plus goroutine accounting in CI guards
	// the rest.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if fast.closes.Load() != 1 || blocked.closes.Load() != 1 {
		t.Errorf("closes: fast=%d blocked=%d, want 1 and 1", fast.closes.Load(), blocked.closes.Load())
	}
	if _, err := it.Next(context.Background()); err != io.EOF {
		t.Errorf("Next after Close = %v, want io.EOF", err)
	}
	if err := it.Close(); err != nil {
		t.Errorf("Close must be idempotent: %v", err)
	}
}

// TestParallelUnionConsumerCancelUnblocksAndTearsDown: cancelling the
// open context (not just the per-Next one) stops the fan-in leak-free.
func TestParallelUnionConsumerCancelUnblocksAndTearsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fast := &safeCountingIterator{cols: []string{"a"}, rows: 1000000, prefix: "x"}
	it := ParallelUnion(ctx, []RowIterator{fast, &safeCountingIterator{cols: []string{"a"}, rows: 1000000, prefix: "y"}}, nil,
		FanInOptions{Workers: 2, BufferRows: 4})
	if _, err := it.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Draining after cancel must terminate (either buffered rows then an
	// error, or an immediate context error) — never hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := it.Next(ctx); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelUnionOpenCtxCancelDoesNotHangNext: cancelling the
// stream-open context while the consumer polls with a different, live
// context must surface the cancellation — pullers exit without terminal
// batches, so Next must not wait for them forever.
func TestParallelUnionOpenCtxCancelDoesNotHangNext(t *testing.T) {
	openCtx, cancel := context.WithCancel(context.Background())
	sources := []RowIterator{
		&safeCountingIterator{cols: []string{"a"}, rows: 1000000, prefix: "x"},
		&safeCountingIterator{cols: []string{"a"}, rows: 1000000, prefix: "y"},
	}
	it := ParallelUnion(openCtx, sources, nil, FanInOptions{Workers: 2, BufferRows: 8})
	defer it.Close()
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancel()
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := it.Next(context.Background()); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next after open-ctx cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next hung after the open context was cancelled")
	}
	if _, err := it.Next(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation must be sticky: %v", err)
	}
}

// TestParallelUnionWorkersCapLimitsConcurrency: with Workers=2 over
// four sources, no more than two sources are ever in flight at once.
func TestParallelUnionWorkersCapLimitsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	mk := func(n int) RowIterator {
		first := true
		return &funcIterator{
			cols: []string{"a"},
			next: func(ctx context.Context) (Row, error) {
				if first {
					first = false
					cur := inFlight.Add(1)
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
				}
				if n == 0 {
					inFlight.Add(-1)
					return nil, io.EOF
				}
				n--
				time.Sleep(time.Millisecond)
				return Row{"x"}, nil
			},
		}
	}
	it := ParallelUnion(context.Background(), []RowIterator{mk(5), mk(5), mk(5), mk(5)}, nil,
		FanInOptions{Workers: 2, BufferRows: 4})
	drain(t, it)
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent sources = %d, want <= 2 (Workers cap)", p)
	}
}

// TestUnionErrorClosesAllRemainingSources pins the sequential union's
// repaired error path: a mid-stream source failure eagerly closes every
// remaining source — the current one and the not-yet-reached ones — and
// the error is sticky across Next calls.
func TestUnionErrorClosesAllRemainingSources(t *testing.T) {
	boom := errors.New("scan failed")
	done := &safeCountingIterator{cols: []string{"a"}, rows: 1, prefix: "x"}
	bad := &erroringIterator{cols: []string{"a"}, good: 1, err: boom}
	unreached := &safeCountingIterator{cols: []string{"a"}, rows: 1, prefix: "y"}
	it := Union([]RowIterator{done, bad, unreached}, nil)
	var err error
	for {
		if _, err = it.Next(context.Background()); err != nil {
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Next = %v, want %v", err, boom)
	}
	if done.closes.Load() != 1 {
		t.Errorf("drained source closed %d times, want 1", done.closes.Load())
	}
	if bad.closes.Load() != 1 {
		t.Errorf("erroring source closed %d times, want 1 (eager close on error)", bad.closes.Load())
	}
	if unreached.closes.Load() != 1 {
		t.Errorf("not-yet-reached source closed %d times, want 1 (eager close on error)", unreached.closes.Load())
	}
	if _, err2 := it.Next(context.Background()); !errors.Is(err2, boom) {
		t.Errorf("error must be sticky: Next after error = %v", err2)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close after error-close: %v", err)
	}
	if done.closes.Load() != 1 || bad.closes.Load() != 1 || unreached.closes.Load() != 1 {
		t.Errorf("Close after eager close double-closed: %d/%d/%d",
			done.closes.Load(), bad.closes.Load(), unreached.closes.Load())
	}
}

// TestUnionCloseIdempotent: Close twice closes each source once.
func TestUnionCloseIdempotent(t *testing.T) {
	a := &safeCountingIterator{cols: []string{"a"}, rows: 3, prefix: "x"}
	b := &safeCountingIterator{cols: []string{"a"}, rows: 3, prefix: "y"}
	it := Union([]RowIterator{a, b}, nil)
	if _, err := it.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if a.closes.Load() != 1 || b.closes.Load() != 1 {
		t.Errorf("closes a=%d b=%d, want 1 and 1", a.closes.Load(), b.closes.Load())
	}
}

// TestEngineParallelFanInMatchesSequential runs a real federated query
// (relational + document + graph sources) both ways and asserts header
// equality and row-multiset equality.
func TestEngineParallelFanInMatchesSequential(t *testing.T) {
	e := federatedEngine(t)
	sql := "SELECT city, price FROM rel:hotels_a, doc:hotels_b, graph:hotel"
	seqIt, err := e.StreamSQLFanIn(context.Background(), sql, FanInOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := seqIt.Columns()
	wantRows := sortedRows(drain(t, seqIt))
	_ = seqIt.Close()
	for _, workers := range []int{2, 4, 8} {
		it, err := e.StreamSQLFanIn(context.Background(), sql, FanInOptions{Workers: workers, BufferRows: 16})
		if err != nil {
			t.Fatal(err)
		}
		if got := it.Columns(); !reflect.DeepEqual(got, wantHeader) {
			t.Fatalf("workers=%d: header %v, want %v", workers, got, wantHeader)
		}
		got := sortedRows(drain(t, it))
		if !reflect.DeepEqual(got, wantRows) {
			t.Errorf("workers=%d: rows %v, want %v", workers, got, wantRows)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineParallelOpenSurfacesFirstError: a failing FROM item must
// surface its resolution error from the parallel open, with the opened
// sources released.
func TestEngineParallelOpenSurfacesFirstError(t *testing.T) {
	e := federatedEngine(t)
	e.FanIn = FanInOptions{Workers: 4}
	_, err := e.StreamSQL(context.Background(), "SELECT city FROM rel:hotels_a, rel:ghost, doc:hotels_b")
	if !errors.Is(err, polystore.ErrNoTable) {
		t.Fatalf("parallel open err = %v, want %v", err, polystore.ErrNoTable)
	}
}
