package query

import (
	"context"
	"io"
	"slices"
	"strconv"
)

// batchMapping returns the column mapping from one header onto another,
// or nil when they already match — the identity case every remap helper
// treats as pass-through.
func batchMapping(from, to []string) []int {
	if slices.Equal(from, to) {
		return nil
	}
	return columnMapping(from, to)
}

// remapBatch projects a batch onto a target header through a
// precomputed mapping: whole vectors are rearranged (missing columns
// become all-null pads), no cell is touched, and the selection carries
// over unchanged. nil src is the identity and returns the batch as-is.
func remapBatch(b *Batch, cols []string, src []int) *Batch {
	if src == nil {
		return b
	}
	vecs := make([]*Vector, len(src))
	for i, j := range src {
		if j >= 0 {
			vecs[i] = b.vecs[j]
		} else {
			vecs[i] = NullVector(b.n)
		}
	}
	return &Batch{cols: cols, vecs: vecs, n: b.n, sel: b.sel}
}

// withSel derives a batch sharing this batch's vectors under a new
// selection.
func (b *Batch) withSel(sel []int) *Batch {
	return &Batch{cols: b.cols, vecs: b.vecs, n: b.n, sel: sel}
}

// head returns the batch truncated to its first k logical rows.
func (b *Batch) head(k int) *Batch {
	if k >= b.Len() {
		return b
	}
	if b.sel != nil {
		return b.withSel(b.sel[:k])
	}
	sel := make([]int, k)
	for i := range sel {
		sel[i] = i
	}
	return b.withSel(sel)
}

// projectBatchIterator remaps whole batches onto a target header.
type projectBatchIterator struct {
	in   BatchIterator
	cols []string
	src  []int
}

// ProjectBatches wraps a batch stream with a projection onto cols —
// the columnar Project: column vectors are rearranged per batch
// (reordering, dropping extras, null-padding missing columns) without
// touching a single cell. Empty cols means SELECT * — pass-through, as
// is a projection that already matches the input header.
func ProjectBatches(in BatchIterator, cols []string) BatchIterator {
	if len(cols) == 0 {
		return in
	}
	src := batchMapping(in.Columns(), cols)
	if src == nil {
		return in
	}
	return &projectBatchIterator{in: in, cols: cols, src: src}
}

func (p *projectBatchIterator) Columns() []string { return p.cols }

func (p *projectBatchIterator) Next(ctx context.Context) (*Batch, error) {
	b, err := p.in.Next(ctx)
	if err != nil {
		return nil, err
	}
	return remapBatch(b, p.cols, p.src), nil
}

func (p *projectBatchIterator) Close() error { return p.in.Close() }

// boundBatchPredicate is one predicate compiled against a batch
// stream's header: the column index resolved once, the comparison
// value parsed once.
type boundBatchPredicate struct {
	p   Predicate
	col int // input column index, -1 when the column is missing
	// val/valOK cache strconv.ParseFloat(p.Value) — the half of the
	// row path's per-row re-parse that depends only on the predicate.
	val   float64
	valOK bool
}

// filterBatchIterator evaluates conjunctive predicates vectorized: per
// batch, each predicate narrows a selection over whole column vectors —
// numeric comparisons run over the float64 mirror (parsed once per
// vector instead of once per row), and nothing is copied to drop a row.
type filterBatchIterator struct {
	in    BatchIterator
	preds []boundBatchPredicate
}

// FilterBatches wraps a batch stream with vectorized central predicate
// evaluation. Selectivity is byte-identical to the row pipeline's
// Filter: a predicate naming a column the input lacks matches nothing,
// and every cell follows Predicate.Matches semantics exactly — numeric
// comparison when both the cell and the value parse as float64, string
// comparison otherwise.
func FilterBatches(in BatchIterator, preds []Predicate) BatchIterator {
	if len(preds) == 0 {
		return in
	}
	idx := make(map[string]int, len(in.Columns()))
	for i, c := range in.Columns() {
		idx[c] = i
	}
	bound := make([]boundBatchPredicate, len(preds))
	for i, p := range preds {
		bp := boundBatchPredicate{p: p, col: -1}
		if j, ok := idx[p.Column]; ok {
			bp.col = j
		}
		if p.Numeric {
			if f, err := strconv.ParseFloat(p.Value, 64); err == nil {
				bp.val, bp.valOK = f, true
			}
		}
		bound[i] = bp
	}
	return &filterBatchIterator{in: in, preds: bound}
}

func (f *filterBatchIterator) Columns() []string { return f.in.Columns() }

func (f *filterBatchIterator) Next(ctx context.Context) (*Batch, error) {
	for {
		b, err := f.in.Next(ctx)
		if err != nil {
			return nil, err
		}
		sel := f.apply(b)
		if len(sel) == 0 {
			// Never emit an empty batch; keep pulling.
			continue
		}
		if len(sel) == b.n && b.sel == nil {
			return b, nil
		}
		return b.withSel(sel), nil
	}
}

// apply narrows the batch's selection predicate by predicate and
// returns the surviving physical row indexes (possibly empty).
func (f *filterBatchIterator) apply(b *Batch) []int {
	sel := b.sel
	for k := range f.preds {
		bp := &f.preds[k]
		if bp.col < 0 {
			// Missing column matches nothing, like the row Filter.
			return nil
		}
		v := b.vecs[bp.col]
		var out []int
		keep := func(i int) {
			if out == nil {
				n := b.n
				if sel != nil {
					n = len(sel)
				}
				out = make([]int, 0, n)
			}
			out = append(out, i)
		}
		if bp.p.Numeric && bp.valOK {
			floats, ok := v.Floats()
			match := func(i int) bool {
				if ok.Get(i) {
					return floatMatch(bp.p.Op, floats[i], bp.val)
				}
				return stringMatch(bp.p.Op, v.Cell(i), bp.p.Value)
			}
			if sel == nil {
				for i := 0; i < v.Len(); i++ {
					if match(i) {
						keep(i)
					}
				}
			} else {
				for _, i := range sel {
					if match(i) {
						keep(i)
					}
				}
			}
		} else {
			if sel == nil {
				for i := 0; i < v.Len(); i++ {
					if stringMatch(bp.p.Op, v.Cell(i), bp.p.Value) {
						keep(i)
					}
				}
			} else {
				for _, i := range sel {
					if stringMatch(bp.p.Op, v.Cell(i), bp.p.Value) {
						keep(i)
					}
				}
			}
		}
		sel = out
		if len(sel) == 0 {
			return nil
		}
	}
	return sel
}

func (f *filterBatchIterator) Close() error { return f.in.Close() }

// floatMatch is the numeric half of Predicate.Matches, hoisted so the
// vectorized filter compares parsed mirrors instead of re-parsing per
// row.
func floatMatch(op CmpOp, a, b float64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpGt:
		return a > b
	case OpGte:
		return a >= b
	case OpLt:
		return a < b
	case OpLte:
		return a <= b
	}
	return false
}

// stringMatch is the string half of Predicate.Matches.
func stringMatch(op CmpOp, cell, val string) bool {
	switch op {
	case OpEq:
		return cell == val
	case OpNe:
		return cell != val
	case OpGt:
		return cell > val
	case OpGte:
		return cell >= val
	case OpLt:
		return cell < val
	case OpLte:
		return cell <= val
	}
	return false
}

// limitBatchIterator caps the stream at n logical rows, slicing the
// final batch's selection rather than copying it.
type limitBatchIterator struct {
	in   BatchIterator
	left int
	done bool
}

// LimitBatches caps a batch stream at n rows; n <= 0 means unlimited.
// The final batch is truncated by selection, and once the cap is
// reached the input is closed eagerly, releasing source scans before
// the consumer calls Close — same contract as the row Limit.
func LimitBatches(in BatchIterator, n int) BatchIterator {
	if n <= 0 {
		return in
	}
	return &limitBatchIterator{in: in, left: n}
}

func (l *limitBatchIterator) Columns() []string { return l.in.Columns() }

func (l *limitBatchIterator) Next(ctx context.Context) (*Batch, error) {
	if l.done {
		return nil, io.EOF
	}
	b, err := l.in.Next(ctx)
	if err != nil {
		return nil, err
	}
	if b.Len() >= l.left {
		b = b.head(l.left)
		l.left = 0
		l.done = true
		_ = l.in.Close()
		return b, nil
	}
	l.left -= b.Len()
	return b, nil
}

func (l *limitBatchIterator) Close() error {
	l.done = true
	return l.in.Close()
}

// unionBatchColumns computes the union header over batch sources: want
// when projecting explicit columns, otherwise the union of the source
// headers in first-seen order — the same rule as the row unions.
func unionBatchColumns(sources []BatchIterator, want []string) []string {
	cols := want
	if len(cols) == 0 {
		seen := map[string]bool{}
		for _, s := range sources {
			for _, c := range s.Columns() {
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
		}
	}
	return cols
}

// unionBatchIterator concatenates batch sources, remapping each
// source's header onto the union header whole-vector.
type unionBatchIterator struct {
	cols    []string
	sources []BatchIterator
	// src is the current source's column mapping (nil = identity),
	// rebuilt on advance.
	src    []int
	cur    int
	closed bool
	// err is the sticky mid-stream failure; see unionIterator.
	err error
}

// UnionBatches merges batch sources by concatenation over a shared
// header — the sequential fan-in fallback with the row Union's
// deterministic source order and error semantics. The context is
// re-checked between batches: one batch can carry ~a thousand rows, so
// a source that serves batch after batch without ever blocking would
// otherwise let cancellation ride far past the caller's deadline.
func UnionBatches(sources []BatchIterator, want []string) BatchIterator {
	u := &unionBatchIterator{cols: unionBatchColumns(sources, want), sources: sources}
	if len(sources) > 0 {
		u.src = batchMapping(sources[0].Columns(), u.cols)
	}
	return u
}

func (u *unionBatchIterator) Columns() []string { return u.cols }

func (u *unionBatchIterator) Next(ctx context.Context) (*Batch, error) {
	if u.err != nil {
		return nil, u.err
	}
	if u.closed {
		return nil, io.EOF
	}
	for u.cur < len(u.sources) {
		// Between-batch cancellation check: transient, like a per-call
		// cancellation surfacing from a source — the stream stays
		// resumable with a live context.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := u.sources[u.cur].Next(ctx)
		if err == io.EOF {
			_ = u.sources[u.cur].Close()
			u.cur++
			if u.cur < len(u.sources) {
				u.src = batchMapping(u.sources[u.cur].Columns(), u.cols)
			}
			continue
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			// Mid-stream failure: sticky, and every remaining source is
			// released eagerly — the row union's contract.
			u.err = err
			_ = u.Close()
			return nil, err
		}
		return remapBatch(b, u.cols, u.src), nil
	}
	return nil, io.EOF
}

func (u *unionBatchIterator) Close() error {
	if u.closed {
		return nil
	}
	u.closed = true
	var first error
	for ; u.cur < len(u.sources); u.cur++ {
		if err := u.sources[u.cur].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
