package golake

// One benchmark per table and figure of the survey (see DESIGN.md's
// per-experiment index). The paper-style rows themselves come from
// cmd/benchreport, which shares the harness in internal/bench; the
// benches here measure the underlying operations and attach the
// quality metrics (precision@k, recovery) as custom benchmark metrics.

import (
	"context"
	"fmt"
	"testing"

	"golake/internal/bench"
	"golake/internal/core"
	"golake/internal/discovery"
	"golake/internal/explore"
	"golake/internal/extract"
	"golake/internal/lakehouse"
	"golake/internal/organize"
	"golake/internal/query"
	"golake/internal/storage/polystore"
	"golake/internal/table"
	"golake/internal/workload"
)

// benchCorpus is the shared Table 3 corpus.
func benchCorpus() *workload.Corpus {
	return workload.GenerateCorpus(bench.DefaultCorpusSpec())
}

// BenchmarkTable1FunctionMatrix exercises every Table 1 function
// implementation once per iteration (the classification regenerated as
// running code).
func BenchmarkTable1FunctionMatrix(b *testing.B) {
	entries := core.Registry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			if _, err := e.Run(); err != nil {
				b.Fatalf("%s/%s: %v", e.Tier, e.Function, err)
			}
		}
	}
	b.ReportMetric(float64(len(entries)), "functions")
}

// BenchmarkTable2DAGOrganization builds the four DAG-based
// organization structures of Table 2 on one corpus per iteration.
func BenchmarkTable2DAGOrganization(b *testing.B) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 16, JoinGroups: 4, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, Seed: 11,
	})
	base, err := table.ParseCSV("base", "a,b\n1,2\n3,4\n5,6\n7,8\n")
	if err != nil {
		b.Fatal(err)
	}
	var prob float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// KAYAK pipeline + task DAG.
		prim := organize.NewPrimitive("profile")
		for _, task := range []string{"load", "stats", "join", "report"} {
			prim.AddTask(task, func(bool) (string, error) { return "", nil })
		}
		_ = prim.After("stats", "load")
		_ = prim.After("join", "load")
		_ = prim.After("report", "stats")
		if _, err := prim.TaskDAG().Stages(); err != nil {
			b.Fatal(err)
		}
		// Nargesian organization DAG.
		nav := organize.NewNavDAG(4)
		nav.Build(c.Tables)
		prob = nav.MeanDiscoveryProbability()
		// Juneau graphs.
		nb := workload.GenerateNotebook(base, 5, 3)
		wg := organize.NewWorkflowGraph()
		if err := wg.FromNotebook(nb); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(prob, "P(find)")
}

// BenchmarkTable3DiscoveryComparison measures, per system of Table 3,
// query latency over a pre-built index, reporting precision@k.
func BenchmarkTable3DiscoveryComparison(b *testing.B) {
	c := benchCorpus()
	for _, d := range bench.Discoverers() {
		b.Run(d.Name(), func(b *testing.B) {
			p, _, _, _, err := bench.EvalDiscoverer(d, c, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.RelatedTables(c.Tables[i%len(c.Tables)], 4)
			}
			b.ReportMetric(p, "P@4")
		})
	}
}

// BenchmarkFig2ArchitecturePipeline runs the full three-tier workflow
// (ingest -> maintain -> explore) per iteration.
func BenchmarkFig2ArchitecturePipeline(b *testing.B) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 12, JoinGroups: 3, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, Seed: 7,
	})
	csvs := make(map[string][]byte, len(c.Tables))
	for _, tbl := range c.Tables {
		csvs[tbl.Name] = []byte(table.ToCSV(tbl))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lake, err := core.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		lake.AddUser("dana", core.RoleDataScientist)
		for name, data := range csvs {
			if _, err := lake.Ingest(context.Background(), "raw/"+name+".csv", data, "gen", "dana"); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := lake.Maintain(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, err := lake.Explore(context.Background(), "dana", explore.Request{
			Mode: explore.ModePopulate, Query: c.Tables[0], K: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoveryScaling measures index-build time per system and
// corpus size (Sec. 6.2.1 scalability claims).
func BenchmarkDiscoveryScaling(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		spec := workload.CorpusSpec{
			NumTables: n, JoinGroups: n / 5, RowsPerTable: 100,
			ExtraCols: 1, KeyVocab: 300, KeySample: 100, NoiseRate: 0.02, Seed: 42,
		}
		c := workload.GenerateCorpus(spec)
		for _, mk := range []func() discovery.Discoverer{
			func() discovery.Discoverer { return discovery.NewAurum() },
			func() discovery.Discoverer { return discovery.NewJOSIE() },
			func() discovery.Discoverer { return discovery.NewD3L() },
		} {
			name := mk().Name()
			b.Run(fmt.Sprintf("%s/tables=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d := mk()
					if err := d.Index(c.Tables); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkD3LFeatureAblation reports precision with each feature
// removed (Sec. 6.2.1: accuracy from combining five dimensions).
func BenchmarkD3LFeatureAblation(b *testing.B) {
	spec := workload.CorpusSpec{
		NumTables: 20, JoinGroups: 4, RowsPerTable: 80,
		ExtraCols: 2, KeyVocab: 150, KeySample: 80, NoiseRate: 0.05,
		AnonymousNames: true, Seed: 13,
	}
	c := workload.GenerateCorpus(spec)
	configs := map[string][5]float64{
		"all":       {1, 1, 1, 1, 1},
		"no-value":  {1, 0, 1, 1, 1},
		"name-only": {1, 0, 0, 0, 0},
	}
	for name, w := range configs {
		b.Run(name, func(b *testing.B) {
			d := discovery.NewD3L()
			d.Weights = w
			p, _, _, _, err := bench.EvalDiscoverer(d, c, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.RelatedTables(c.Tables[i%len(c.Tables)], 4)
			}
			b.ReportMetric(p, "P@4")
		})
	}
}

// BenchmarkDatamaranExtraction measures unsupervised template
// extraction, reporting recovery at 5% noise (Sec. 5.1).
func BenchmarkDatamaranExtraction(b *testing.B) {
	gl := workload.GenerateLog(workload.LogSpec{Templates: 5, Records: 600, NoiseRate: 0.05, Seed: 9})
	var tpls []extract.StructureTemplate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpls = extract.Datamaran(gl.Content, extract.DefaultDatamaranConfig())
	}
	b.ReportMetric(float64(len(tpls)), "templates")
}

// BenchmarkExplorationModes measures per-mode query latency
// (Sec. 7.1).
func BenchmarkExplorationModes(b *testing.B) {
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 16, JoinGroups: 4, RowsPerTable: 80,
		ExtraCols: 1, KeyVocab: 100, KeySample: 60, NoiseRate: 0.02, Seed: 29,
	})
	e := explore.NewExplorer()
	if err := e.Index(c.Tables); err != nil {
		b.Fatal(err)
	}
	modes := map[string]explore.Mode{
		"join-column": explore.ModeJoinColumn,
		"populate":    explore.ModePopulate,
		"task":        explore.ModeTask,
	}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl := c.Tables[i%len(c.Tables)]
				if _, err := e.Explore(explore.Request{
					Mode: mode, Query: tbl, K: 3,
					Column: c.KeyColumn[tbl.Name], Task: discovery.TaskAugment,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLakehouseScan measures range scans over the Sec. 8.3
// Lakehouse extension with and without its data-skipping statistics.
func BenchmarkLakehouseScan(b *testing.B) {
	lh, err := lakehouse.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	mk := func(base int) *table.Table {
		s := "id,v\n"
		for i := 0; i < 2000; i++ {
			s += fmt.Sprintf("%d,%d\n", base+i, base+i)
		}
		t, _ := table.ParseCSV("metrics", s)
		return t
	}
	if err := lh.Create(mk(0)); err != nil {
		b.Fatal(err)
	}
	v := 1
	for f := 1; f < 8; f++ {
		if v, err = lh.Append("metrics", v, mk(f*10000)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("skipping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lh.ScanWhere("metrics", "v", 30000, 31999); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, _, err := lh.Read("metrics")
			if err != nil {
				b.Fatal(err)
			}
			_ = t.Filter(func(row []string) bool { return row[1] >= "30000" && row[1] <= "31999" })
		}
	})
}

// BenchmarkFederatedQueryPushdown measures federated query latency
// with and without predicate pushdown (Sec. 7.2).
func BenchmarkFederatedQueryPushdown(b *testing.B) {
	p, err := polystore.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var csv []byte
	{
		s := "id,site,v\n"
		for i := 0; i < 20000; i++ {
			s += fmt.Sprintf("%d,s%d,%d\n", i, i%50, i%997)
		}
		csv = []byte(s)
	}
	if _, err := p.Ingest("raw/big.csv", csv); err != nil {
		b.Fatal(err)
	}
	for _, push := range []bool{true, false} {
		b.Run(fmt.Sprintf("pushdown=%v", push), func(b *testing.B) {
			e := query.NewEngine(p)
			e.PushDown = push
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecuteSQL(context.Background(), "SELECT id FROM rel:big WHERE site = 's7'"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// streamBenchEngine builds a query engine over one n-row relational
// table, registered directly in the polystore (ingest is not under
// measurement); the corpus shape is shared with benchreport via
// bench.BigEngine.
func streamBenchEngine(b *testing.B, rows int) *query.Engine {
	b.Helper()
	e, err := bench.BigEngine(b.TempDir(), rows)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// queryStreamSizes are the corpus sizes of the streaming-vs-
// materialized comparison; the LIMIT stays fixed so the streamed cost
// should stay flat while the materialized cost grows with the corpus.
var queryStreamSizes = []int{1000, 100000}

// BenchmarkQueryStream measures the iterator pipeline on a LIMIT 10
// query: the scan stops after 10 rows, so latency and allocs/op must
// be O(limit), independent of corpus size.
func BenchmarkQueryStream(b *testing.B) {
	for _, rows := range queryStreamSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			e := streamBenchEngine(b, rows)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			out := 0
			for i := 0; i < b.N; i++ {
				res, err := e.ExecuteSQL(ctx, "SELECT id FROM rel:big LIMIT 10")
				if err != nil {
					b.Fatal(err)
				}
				out = res.NumRows()
			}
			b.ReportMetric(float64(out)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkQueryMaterialized is the pre-streaming baseline for the
// same LIMIT 10 query: materialize the full scan, then truncate — the
// execution model the row-iterator pipeline replaced. Its latency and
// allocs/op grow with the corpus.
func BenchmarkQueryMaterialized(b *testing.B) {
	for _, rows := range queryStreamSizes {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			e := streamBenchEngine(b, rows)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			out := 0
			for i := 0; i < b.N; i++ {
				full, err := e.ExecuteSQL(ctx, "SELECT id FROM rel:big")
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				got := full.Filter(func([]string) bool { n++; return n <= 10 })
				out = got.NumRows()
			}
			b.ReportMetric(float64(out)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkUnionParallel measures concurrent fan-in on the synthetic
// slow-store federation (8 sources, one 10× slower per row): fanin=1 is
// the sequential union paying the sum of source durations; wider
// fan-ins overlap the waits behind bounded buffers, so wall-clock
// approaches the slowest source. allocs/op must not grow over the
// sequential baseline — the batch scratch amortizes the per-row remap.
// The experiment body is shared with benchreport's FanIn report and the
// -json trajectory results (bench.DrainFanIn), so they measure the same
// thing.
func BenchmarkUnionParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("fanin=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			rows := 0
			for i := 0; i < b.N; i++ {
				n, err := bench.DrainFanIn(workers)
				if err != nil {
					b.Fatal(err)
				}
				rows = n
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkMaintainIncremental measures the steady-state per-ingest
// maintenance cost with incremental reindexing: each iteration ingests
// one new dataset into an already-maintained lake and runs the
// incremental pass, which must reindex exactly that dataset.
func BenchmarkMaintainIncremental(b *testing.B) {
	ctx := context.Background()
	lake, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	lake.AddUser("dana", RoleDataScientist)
	c := benchCorpus()
	for _, tbl := range c.Tables {
		if _, err := lake.Ingest(ctx, "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "gen", "dana"); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := lake.Maintain(ctx); err != nil {
		b.Fatal(err)
	}
	csv := table.ToCSV(c.Tables[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := lake.Ingest(ctx, fmt.Sprintf("raw/fresh_%d.csv", i), []byte(csv), "gen", "dana"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := lake.MaintainIncremental(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if rep.DatasetsReindexed != 1 {
			b.Fatalf("reindexed %d datasets, want 1", rep.DatasetsReindexed)
		}
	}
}

// BenchmarkMaintainFullRebuild is the pre-incremental baseline: the
// same one-new-dataset workload paying the O(lake) full rebuild every
// pass.
func BenchmarkMaintainFullRebuild(b *testing.B) {
	ctx := context.Background()
	lake, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	lake.AddUser("dana", RoleDataScientist)
	c := benchCorpus()
	for _, tbl := range c.Tables {
		if _, err := lake.Ingest(ctx, "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "gen", "dana"); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := lake.Maintain(ctx); err != nil {
		b.Fatal(err)
	}
	csv := table.ToCSV(c.Tables[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := lake.Ingest(ctx, fmt.Sprintf("raw/full_%d.csv", i), []byte(csv), "gen", "dana"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := lake.Maintain(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
