module golake

go 1.22
