package golake

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"golake/internal/table"
	"golake/internal/workload"
)

// TestUnifiedQueryFacade drives Lake.Query through the public facade:
// one QueryRequest in, an ordered stream with plan and stats out.
func TestUnifiedQueryFacade(t *testing.T) {
	ctx := context.Background()
	lake, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lake.AddUser("dana", RoleDataScientist)
	orders := "order_id,total\no1,10\no2,30\no3,20\n"
	if _, err := lake.Ingest(ctx, "raw/orders.csv", []byte(orders), "test", "dana"); err != nil {
		t.Fatal(err)
	}
	st, err := lake.Query(ctx, "dana", QueryRequest{
		SQL:   "SELECT order_id, total FROM rel:orders",
		Order: []OrderKey{{Column: "total", Desc: true}},
		Limit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var ids []string
	for {
		row, err := st.Next(ctx)
		if err != nil {
			break
		}
		ids = append(ids, row[0])
	}
	if strings.Join(ids, ",") != "o2,o3" {
		t.Errorf("ordered ids = %v", ids)
	}
	if st.Plan().Sort != "top-k heap (k=2)" {
		t.Errorf("plan = %+v", st.Plan())
	}
	if es := st.Stats(); es.RowsOut != 2 || len(es.Sources) != 1 || es.Sources[0].Rows != 3 {
		t.Errorf("stats = %+v", st.Stats())
	}
	// EXPLAIN through the facade returns a rowless plan stream.
	ex, err := lake.Query(ctx, "dana", QueryRequest{SQL: "SELECT * FROM rel:orders", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if !ex.ExplainOnly() || !strings.Contains(ex.Plan().String(), "source rel:orders") {
		t.Errorf("explain plan = %q", ex.Plan().String())
	}
}

// TestEndToEndPublicAPI drives the whole lake through the public
// facade only: open, ingest heterogeneous files, maintain, explore,
// query, govern.
func TestEndToEndPublicAPI(t *testing.T) {
	ctx := context.Background()
	lake, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lake.AddUser("dana", RoleDataScientist)
	lake.AddUser("greta", RoleGovernance)

	orders := "order_id,customer,total\no1,alice,10\no2,bob,20\no3,alice,30\n"
	customers := "customer,city\nalice,berlin\nbob,paris\ncarol,rome\n"
	clicks := "{\"user\":\"alice\",\"n\":1}\n{\"user\":\"bob\",\"n\":2}\n"

	for path, data := range map[string]string{
		"raw/orders.csv":    orders,
		"raw/customers.csv": customers,
		"raw/clicks.jsonl":  clicks,
	} {
		if _, err := lake.Ingest(ctx, path, []byte(data), "test", "dana"); err != nil {
			t.Fatalf("Ingest %s: %v", path, err)
		}
	}
	rep, err := lake.Maintain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 2 {
		t.Errorf("maintained tables = %d", rep.Tables)
	}

	// Discovery: customers relates to orders via the customer column.
	related, err := lake.RelatedTables(ctx, "dana", "orders", 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range related {
		if r.Table == "customers" {
			found = true
		}
	}
	if !found {
		t.Errorf("customers not found related to orders: %+v", related)
	}

	// Federated SQL across stores.
	rows, err := lake.QuerySQL(ctx, "dana", "SELECT customer FROM rel:orders WHERE total >= 20")
	if err != nil {
		t.Fatal(err)
	}
	if rows.NumRows() != 2 {
		t.Errorf("sql rows = %d", rows.NumRows())
	}
	docs, err := lake.QuerySQL(ctx, "dana", "SELECT user FROM doc:clicks WHERE n = 2")
	if err != nil {
		t.Fatal(err)
	}
	if docs.NumRows() != 1 || docs.Row(0)[0] != "bob" {
		t.Errorf("doc rows:\n%s", ToCSV(docs))
	}

	// Governance: the audit trail has the ingest and the query.
	events, err := lake.Audit(ctx, "greta", "raw/orders.csv")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[string(ev.Kind)] = true
	}
	if !kinds["ingest"] || !kinds["query"] {
		t.Errorf("audit kinds = %v, want ingest+query", kinds)
	}

	// Swamp check is healthy: all three datasets carry metadata.
	if s, err := lake.SwampAudit(ctx); err != nil || !s.Healthy() {
		t.Errorf("swamp = %+v, %v", s, err)
	}
}

// TestExploreModesThroughFacade exercises the three exploration modes
// through the public constants.
func TestExploreModesThroughFacade(t *testing.T) {
	ctx := context.Background()
	lake, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lake.AddUser("dana", RoleDataScientist)
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 8, JoinGroups: 2, RowsPerTable: 60,
		ExtraCols: 1, KeyVocab: 80, KeySample: 50, Seed: 3,
	})
	for _, tbl := range c.Tables {
		if _, err := lake.Ingest(ctx, "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "gen", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lake.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	q, err := lake.Poly.Rel.Table(c.Tables[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		req  ExploreRequest
		name string
	}{
		{ExploreRequest{Mode: ModeJoinColumn, Query: q, Column: c.KeyColumn[q.Name], K: 3}, "join"},
		{ExploreRequest{Mode: ModePopulate, Query: q, K: 3}, "populate"},
		{ExploreRequest{Mode: ModeTask, Query: q, Task: TaskAugment, K: 3}, "task"},
	} {
		res, err := lake.Explore(ctx, "dana", mode.req)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if len(res) == 0 {
			t.Errorf("%s: no results", mode.name)
		}
		for _, r := range res {
			if !c.Joinable[workload.NewPair(q.Name, r.Table)] {
				t.Errorf("%s: non-related result %+v", mode.name, r)
			}
		}
	}
}

// TestParseCSVFacade sanity-checks the helper exports.
func TestParseCSVFacade(t *testing.T) {
	tbl, err := ParseCSV("t", "a,b\n1,2\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := ToCSV(tbl); !strings.HasPrefix(got, "a,b\n") {
		t.Errorf("ToCSV = %q", got)
	}
}

// TestScalePipeline pushes a larger corpus through the facade to catch
// integration-scale issues the unit tests miss.
func TestScalePipeline(t *testing.T) {
	ctx := context.Background()
	if testing.Short() {
		t.Skip("short mode")
	}
	lake, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lake.AddUser("dana", RoleDataScientist)
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 60, JoinGroups: 10, RowsPerTable: 150,
		ExtraCols: 2, KeyVocab: 400, KeySample: 120, NoiseRate: 0.03, Seed: 99,
	})
	for _, tbl := range c.Tables {
		if _, err := lake.Ingest(ctx, "raw/"+tbl.Name+".csv", []byte(table.ToCSV(tbl)), "gen", "dana"); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := lake.Maintain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 60 {
		t.Fatalf("tables = %d", rep.Tables)
	}
	// Spot-check discovery quality at scale.
	hits, total := 0, 0
	for _, q := range c.Tables[:10] {
		res, err := lake.RelatedTables(ctx, "dana", q.Name, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Via != "populate" {
				continue
			}
			total++
			if c.Joinable[workload.NewPair(q.Name, r.Table)] {
				hits++
			}
		}
	}
	if total == 0 || float64(hits)/float64(total) < 0.9 {
		t.Errorf("discovery precision at scale = %d/%d", hits, total)
	}
	// Federated query across many tables.
	name := c.Tables[0].Name
	res, err := lake.QuerySQL(ctx, "dana", fmt.Sprintf("SELECT %s FROM rel:%s LIMIT 7", c.KeyColumn[name], name))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 {
		t.Errorf("limit rows = %d", res.NumRows())
	}
}

// TestDurableLakeFacade drives the public durability API end to end: a
// lake with a local backend and an aggressive snapshot threshold is
// filled, hard-stopped (no Close), and reopened byte-identical.
func TestDurableLakeFacade(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	open := func() *Lake {
		t.Helper()
		backend, err := NewLocalBackend(filepath.Join(dir, ".golake"), WithSync(SyncAlways))
		if err != nil {
			t.Fatal(err)
		}
		lake, err := Open(dir, WithPersistence(backend), WithSnapshotEvery(256))
		if err != nil {
			t.Fatal(err)
		}
		return lake
	}
	lake := open()
	lake.AddUser("dana", RoleDataScientist)
	orders := "order_id,total\no1,10\no2,30\no3,20\n"
	if _, err := lake.Ingest(ctx, "raw/orders.csv", []byte(orders), "erp", "dana"); err != nil {
		t.Fatal(err)
	}
	if _, err := lake.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := lake.QuerySQL(ctx, "dana", "SELECT order_id, total FROM rel:orders")
	if err != nil {
		t.Fatal(err)
	}

	// Hard stop: no Close, the tiny snapshot threshold has already
	// checkpointed at least once and the WAL carries the rest.
	re := open()
	defer re.Close()
	got, err := re.QuerySQL(ctx, "dana", "SELECT order_id, total FROM rel:orders")
	if err != nil {
		t.Fatal(err)
	}
	if ToCSV(got) != ToCSV(want) {
		t.Errorf("reopened rows = %q, want %q", ToCSV(got), ToCSV(want))
	}
	st := re.MaintenanceStatus()
	if st.Durability == nil || st.Durability.Backend != "local" {
		t.Fatalf("durability = %+v, want local backend", st.Durability)
	}
	if st.Durability.Replay == nil {
		t.Fatal("no replay stats after reopen")
	}
}
