// Data discovery: the survey's Table 3 systems side by side on one
// synthetic open-data corpus with known joinability ground truth —
// which tables can augment a data-science training set, which columns
// join, which semantic domains the lake contains.
package main

import (
	"fmt"
	"log"

	"golake/internal/bench"
	"golake/internal/discovery"
	"golake/internal/enrich"
	"golake/internal/table"
	"golake/internal/workload"
)

func main() {
	// A corpus of 24 "open data" tables in 4 topical groups; tables in
	// one group share a key universe and schema.
	c := workload.GenerateCorpus(workload.CorpusSpec{
		NumTables: 24, JoinGroups: 4, RowsPerTable: 100,
		ExtraCols: 2, KeyVocab: 200, KeySample: 90, NoiseRate: 0.03, Seed: 77,
	})
	query := c.Tables[0]
	fmt.Printf("query table: %s (group %s)\n\n", query.Name, query.Meta["group"])

	// 1. Compare the discovery systems on the same query.
	for _, d := range bench.Discoverers() {
		if err := d.Index(c.Tables); err != nil {
			log.Fatal(err)
		}
		if dln, ok := d.(*discovery.DLN); ok {
			dln.Train(workload.JoinQueryLog(c, 0, 3))
		}
		res := d.RelatedTables(query, 3)
		fmt.Printf("%-8s top-3:", d.Name())
		for _, ts := range res {
			mark := " "
			if c.Joinable[workload.NewPair(query.Name, ts.Table)] {
				mark = "✓"
			}
			fmt.Printf("  %s%s(%.2f)", mark, ts.Table, ts.Score)
		}
		fmt.Println()
	}

	// 2. Column-level joinability with JOSIE (exact top-k overlap).
	josie := discovery.NewJOSIE()
	if err := josie.Index(c.Tables); err != nil {
		log.Fatal(err)
	}
	keyCol := c.KeyColumn[query.Name]
	matches, err := josie.JoinableColumns(query, keyCol, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncolumns joinable with %s.%s:\n", query.Name, keyCol)
	for _, m := range matches {
		fmt.Printf("  %-40s overlap=%.0f values\n", m.Ref, m.Score)
	}

	// 3. Juneau task search: find tables to augment a training set.
	juneau := discovery.NewJuneau(discovery.TaskAugment)
	if err := juneau.Index(c.Tables); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naugmentation candidates (Juneau, task=augment):")
	for _, ts := range juneau.RelatedTables(query, 3) {
		fmt.Printf("  %-30s %.2f\n", ts.Table, ts.Score)
	}

	// 4. Semantic enrichment: what domains live in this lake?
	domains := enrich.D4(c.Tables[:8], enrich.DefaultD4Config())
	fmt.Printf("\nD4 discovered %d semantic domains in the first 8 tables:\n", len(domains))
	for _, d := range domains {
		terms := d.Terms
		if len(terms) > 4 {
			terms = terms[:4]
		}
		fmt.Printf("  %s: %d columns, terms like %v\n", d.Name, len(d.Columns), terms)
	}

	// 5. Homograph check on a hand-made ambiguity.
	fruit, _ := table.ParseCSV("fruit", "name\napple\npear\nplum\ngrape\n")
	brands, _ := table.ParseCSV("brands", "name\napple\nsamsung\nsony\nnokia\n")
	homs := enrich.DomainNet([]*table.Table{fruit, brands,
		mustCSV("fruit2", "n\npear\nplum\ngrape\nmelon\napple\n"),
		mustCSV("brands2", "n\nsamsung\nsony\nnokia\nlg\napple\n"),
	}, enrich.DefaultDomainNetConfig())
	fmt.Println("\nDomainNet homographs:")
	for _, h := range homs {
		fmt.Printf("  %q spans %d communities (%d attributes)\n", h.Value, h.Communities, len(h.Attributes))
	}
}

func mustCSV(name, csv string) *table.Table {
	t, err := table.ParseCSV(name, csv)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
