// Federation: heterogeneous data living in different member stores of
// the polystore — relational hotels, document reviews, a property
// graph of owners — queried through one SQL dialect, then integrated
// Constance-style (matching -> integrated schema -> rewriting) and
// ALITE-style (full disjunction).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"golake/internal/integrate"
	"golake/internal/query"
	"golake/internal/storage/polystore"
	"golake/internal/table"
)

const hotelsEU = `city,hotel,price
berlin,adlon,320
paris,lutetia,410
rome,hassler,380
`

const hotelsUS = `town,hotel,price
chicago,drake,290
boston,lenox,260
berlin,adlon,320
`

const reviews = `{"hotel":"adlon","stars":5,"text":"grand"}
{"hotel":"drake","stars":4,"text":"classic"}
{"hotel":"lutetia","stars":5,"text":"belle"}
`

const owners = `{"nodes":[
  {"id":"o1","label":"owner","props":{"name":"kempinski","hotel":"adlon"}},
  {"id":"o2","label":"owner","props":{"name":"hilton","hotel":"drake"}}],
 "edges":[{"from":"o1","to":"o2","label":"competitor"}]}`

func main() {
	dir, err := os.MkdirTemp("", "golake-federation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	poly, err := polystore.New(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Route each source to its natural store.
	ingest := func(path, data string) polystore.Placement {
		pl, err := poly.Ingest(path, []byte(data))
		if err != nil {
			log.Fatal(err)
		}
		return pl
	}
	fmt.Println("placements:")
	fmt.Printf("  %s -> %s\n", "hotels_eu.csv", ingest("raw/hotels_eu.csv", hotelsEU).Target)
	fmt.Printf("  %s -> %s\n", "hotels_us.csv", ingest("raw/hotels_us.csv", hotelsUS).Target)
	fmt.Printf("  %s -> %s\n", "reviews.jsonl", ingest("raw/reviews.jsonl", reviews).Target)
	if _, err := poly.IngestAs("raw/owners.json", []byte(owners), polystore.TargetGraph); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  owners.json -> graph (user override)")

	// One language over all stores.
	engine := query.NewEngine(poly)
	for _, sql := range []string{
		"SELECT hotel, price FROM rel:hotels_eu WHERE price > 350",
		"SELECT hotel, stars FROM doc:reviews WHERE stars >= 5",
		"SELECT name, hotel FROM graph:owner",
		"SELECT hotel FROM rel:hotels_eu, rel:hotels_us WHERE price >= 300",
	} {
		res, err := engine.ExecuteSQL(context.Background(), sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n%s", sql, table.ToCSV(res))
	}

	// Constance-style partial integration of the two hotel sources.
	eu, _ := poly.Rel.Table("hotels_eu")
	us, _ := poly.Rel.Table("hotels_us")
	tables := []*table.Table{eu, us}
	corrs := integrate.MatchAll(tables, integrate.DefaultMatchConfig())
	clusters := integrate.Cluster(tables, corrs)
	schema := integrate.BuildIntegratedSchema(tables, clusters, 2)
	fmt.Printf("\nintegrated schema: %s\n", schema)
	subs, err := schema.Rewrite(schema.AttributeNames(), "", "")
	if err != nil {
		log.Fatal(err)
	}
	merged, err := integrate.Execute(subs, func(name string) (*table.Table, error) {
		return poly.Rel.Table(name)
	}, schema.AttributeNames())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated result (%d rows):\n%s", merged.NumRows(), table.ToCSV(merged))

	// ALITE-style full disjunction preserves every tuple and connects
	// the ones that agree.
	fd := integrate.FullDisjunction(tables, clusters)
	fmt.Printf("full disjunction (%d rows):\n%s", fd.NumRows(), table.ToCSV(fd))
}
