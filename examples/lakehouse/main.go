// Lakehouse: the survey's Sec. 8.3 future direction running on the
// lake's raw file store — ACID commits over immutable files, optimistic
// concurrency between writers, time travel, copy-on-write deletes, and
// statistics-driven data skipping.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"golake/internal/lakehouse"
	"golake/internal/table"
)

func main() {
	dir, err := os.MkdirTemp("", "golake-lakehouse-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lh, err := lakehouse.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Create a metrics table and append daily batches; each batch
	// becomes an immutable file with recorded column statistics.
	day1, _ := table.ParseCSV("metrics", "day,reading\n1,101\n1,104\n1,99\n")
	if err := lh.Create(day1); err != nil {
		log.Fatal(err)
	}
	v := 1
	for day := 2; day <= 4; day++ {
		batch, _ := table.ParseCSV("metrics", fmt.Sprintf(
			"day,reading\n%d,%d\n%d,%d\n", day, day*100+1, day, day*100+5))
		if v, err = lh.Append("metrics", v, batch); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("table at v%d\n", v)

	// Two writers race: the one holding a stale version is rejected
	// and retries after re-reading — no locks, no lost updates.
	late, _ := table.ParseCSV("metrics", "day,reading\n9,999\n")
	if _, err := lh.Append("metrics", 1, late); errors.Is(err, lakehouse.ErrConflict) {
		fmt.Println("stale writer rejected:", err)
	}
	_, head, _ := lh.Read("metrics")
	if v, err = lh.Append("metrics", head, late); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retry committed at v%d\n", v)

	// Time travel: audit what the table looked like after day 1.
	old, err := lh.ReadAt("metrics", 1)
	if err != nil {
		log.Fatal(err)
	}
	now, _, _ := lh.Read("metrics")
	fmt.Printf("time travel: v1 had %d rows, head has %d rows\n", old.NumRows(), now.NumRows())

	// Copy-on-write delete: remove day 9, history keeps it.
	if v, err = lh.Delete("metrics", v, func(row map[string]string) bool {
		return row["day"] == "9"
	}); err != nil {
		log.Fatal(err)
	}

	// Data skipping: the range scan reads only files whose min/max
	// statistics overlap the predicate.
	got, skipped, err := lh.ScanWhere("metrics", "reading", 300, 310)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan [300,310]: %d rows, %d files skipped via stats\n",
		got.NumRows(), skipped)

	// The transaction log is the table's full history.
	hist, _ := lh.History("metrics")
	fmt.Println("history:")
	for _, h := range hist {
		fmt.Printf("  v%d %-7s %d files %d rows\n", h.Version, h.Operation, h.Files, h.Rows)
	}

	// VACUUM trades history for storage: orphaned files are reclaimed
	// and time travel below the retention version is truncated.
	_, head, _ = lh.Read("metrics")
	removed, verr := lh.Vacuum("metrics", head)
	if verr != nil {
		log.Fatal(verr)
	}
	fmt.Printf("vacuum: reclaimed %d orphaned files; time travel now starts at v%d\n", removed, head)
}
