// Quickstart: assemble a lake, ingest heterogeneous raw files, run the
// maintenance tier, then explore — the minimal end-to-end tour of the
// three-tier architecture.
package main

import (
	"fmt"
	"log"
	"os"

	"golake"
)

const orders = `order_id,customer,city,total
o1,alice,berlin,120.50
o2,bob,paris,80.00
o3,carol,berlin,43.10
o4,alice,rome,220.00
`

const customers = `customer,city,segment
alice,berlin,enterprise
bob,paris,smb
carol,berlin,smb
dave,lyon,enterprise
`

const clicks = `{"user":"alice","page":"/pricing","ms":312}
{"user":"bob","page":"/docs","ms":120}
{"user":"alice","page":"/docs","ms":98}
`

func main() {
	dir, err := os.MkdirTemp("", "golake-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	lake, err := golake.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	lake.AddUser("dana", golake.RoleDataScientist)

	// Ingestion tier: raw files land in the polystore (CSV becomes a
	// relational table, JSON-lines a document collection), metadata is
	// extracted and modeled automatically.
	for path, data := range map[string]string{
		"raw/orders.csv":    orders,
		"raw/customers.csv": customers,
		"raw/clicks.jsonl":  clicks,
	} {
		res, err := lake.Ingest(path, []byte(data), "quickstart", "dana")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %-18s -> %s store\n", path, res.Placement.Target)
	}

	// Maintenance tier: index, organize, enrich.
	rep, err := lake.Maintain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maintained %d tables; %d relaxed FDs discovered\n", rep.Tables, len(rep.RFDs))

	// Exploration tier, part 1: query-driven discovery.
	related, err := lake.RelatedTables("dana", "orders", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables related to orders:")
	for _, r := range related {
		fmt.Printf("  %-12s score=%.2f via %s\n", r.Table, r.Score, r.Via)
	}

	// Exploration tier, part 2: federated SQL over the polystore.
	rows, err := lake.QuerySQL("dana", "SELECT customer, total FROM rel:orders WHERE city = 'berlin'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("berlin orders:\n" + golake.ToCSV(rows))

	docs, err := lake.QuerySQL("dana", "SELECT user, page FROM doc:clicks WHERE ms > 100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("slow clicks:\n" + golake.ToCSV(docs))

	// Governance: is the lake turning into a swamp?
	swamp := lake.SwampCheck()
	fmt.Printf("swamp check: %d/%d datasets carry metadata (healthy=%v)\n",
		swamp.WithMetadata, swamp.Datasets, swamp.Healthy())
}
