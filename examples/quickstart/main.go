// Quickstart: assemble a lake, ingest heterogeneous raw files, run the
// maintenance tier, then explore — the minimal end-to-end tour of the
// three-tier architecture.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"golake"
	"golake/lakeerr"
)

const orders = `order_id,customer,city,total
o1,alice,berlin,120.50
o2,bob,paris,80.00
o3,carol,berlin,43.10
o4,alice,rome,220.00
`

const customers = `customer,city,segment
alice,berlin,enterprise
bob,paris,smb
carol,berlin,smb
dave,lyon,enterprise
`

const clicks = `{"user":"alice","page":"/pricing","ms":312}
{"user":"bob","page":"/docs","ms":120}
{"user":"alice","page":"/docs","ms":98}
`

func main() {
	dir, err := os.MkdirTemp("", "golake-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Every lake operation takes a context; cancel it to abort
	// long-running maintenance or queries mid-flight.
	ctx := context.Background()
	lake, err := golake.Open(dir, golake.WithMaxResults(1000))
	if err != nil {
		log.Fatal(err)
	}
	lake.AddUser("dana", golake.RoleDataScientist)

	// Ingestion tier: raw files land in the polystore (CSV becomes a
	// relational table, JSON-lines a document collection), metadata is
	// extracted and modeled automatically. IngestBatch loads them in
	// one call.
	results, err := lake.IngestBatch(ctx, "dana", []golake.IngestItem{
		{Path: "raw/orders.csv", Data: []byte(orders), Source: "quickstart"},
		{Path: "raw/customers.csv", Data: []byte(customers), Source: "quickstart"},
		{Path: "raw/clicks.jsonl", Data: []byte(clicks), Source: "quickstart"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("ingested %-18s -> %s store\n", res.Placement.Path, res.Placement.Target)
	}

	// Maintenance tier: index, organize, enrich.
	rep, err := lake.Maintain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maintained %d tables; %d relaxed FDs discovered\n", rep.Tables, len(rep.RFDs))

	// Exploration tier, part 1: query-driven discovery.
	related, err := lake.RelatedTables(ctx, "dana", "orders", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables related to orders:")
	for _, r := range related {
		fmt.Printf("  %-12s score=%.2f via %s\n", r.Table, r.Score, r.Via)
	}

	// Exploration tier, part 2: federated SQL over the polystore.
	rows, err := lake.QuerySQL(ctx, "dana", "SELECT customer, total FROM rel:orders WHERE city = 'berlin'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("berlin orders:\n" + golake.ToCSV(rows))

	docs, err := lake.QuerySQL(ctx, "dana", "SELECT user, page FROM doc:clicks WHERE ms > 100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("slow clicks:\n" + golake.ToCSV(docs))

	// Errors are typed: a bad statement classifies as invalid_query.
	if _, err := lake.QuerySQL(ctx, "dana", "SELEKT nope"); lakeerr.IsInvalidQuery(err) {
		fmt.Printf("typed error: [%s] %v\n", lakeerr.CodeOf(err), err)
	}

	// Governance: is the lake turning into a swamp?
	swamp, err := lake.SwampAudit(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swamp check: %d/%d datasets carry metadata (healthy=%v)\n",
		swamp.WithMetadata, swamp.Datasets, swamp.Healthy())
}
