// Automaintain: the always-on lake. Open with WithAutoMaintain and the
// background scheduler runs incremental maintenance passes whenever
// new data arrives — ingest over HTTP and the dataset becomes
// explorable with no operator-triggered Maintain call, the operating
// mode of continuously-running catalog systems (GOODS-style post-hoc
// cataloging).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"golake"
)

const orders = `order_id,customer,total
o1,alice,120.50
o2,bob,80.00
o3,carol,43.10
`

const customers = `customer,city,segment
alice,berlin,enterprise
bob,paris,smb
carol,berlin,smb
`

func main() {
	dir, err := os.MkdirTemp("", "golake-automaintain-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One option turns the manual-maintenance lake into a service:
	// every 50ms the scheduler checks for new data and runs an
	// incremental pass (O(new datasets), not O(lake)).
	lake, err := golake.Open(dir, golake.WithAutoMaintain(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer lake.Close()
	lake.AddUser("dana", golake.RoleDataScientist)

	srv := httptest.NewServer(lake.HTTPHandler())
	defer srv.Close()

	// Ingest over REST — what a pipeline pushing data into a running
	// `lakectl serve -auto-maintain 5s` deployment does.
	for path, csv := range map[string]string{
		"raw/orders.csv":    orders,
		"raw/customers.csv": customers,
	} {
		body, _ := json.Marshal(map[string]string{"path": path, "content": csv})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/datasets", bytes.NewReader(body))
		req.Header.Set("X-Lake-User", "dana")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("POST /v1/datasets %-18s -> %s\n", path, resp.Status)
	}

	// No Maintain call anywhere: poll discovery until the scheduler's
	// pass lands. In a real deployment this is just "the data shows up".
	deadline := time.Now().Add(10 * time.Second)
	var related []byte
	for {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/related?table=orders&k=3", nil)
		req.Header.Set("X-Lake-User", "dana")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			related = data
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("scheduler never indexed the ingested data")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("GET /v1/related?table=orders -> %s\n", related)

	// The maintenance endpoint reports what the scheduler has done.
	resp, err := http.Get(srv.URL + "/v1/maintenance")
	if err != nil {
		log.Fatal(err)
	}
	status, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /v1/maintenance -> %s\n", status)

	st := lake.MaintenanceStatus()
	fmt.Printf("passes=%d failures=%d stale=%v auto=%v\n",
		st.PassesRun, st.Failures, st.Stale, st.Auto)
}
