// Governance: the concerns the Gartner critique says separate a data
// lake from a data swamp — roles and access control, provenance and
// lineage, schema-evolution history, constraint-based cleaning, and
// validation-rule drift detection.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"golake"
	"golake/internal/clean"
	"golake/internal/evolve"
	"golake/internal/table"
	"golake/internal/workload"
	"golake/lakeerr"
)

func main() {
	dir, err := os.MkdirTemp("", "golake-governance-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	lake, err := golake.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	lake.AddUser("dana", golake.RoleDataScientist)
	lake.AddUser("carl", golake.RoleCurator)
	lake.AddUser("greta", golake.RoleGovernance)

	// Ingest a slightly dirty dataset.
	geo := `station,city,country
s1,berlin,de
s2,berlin,de
s3,berlin,fr
s4,paris,fr
s5,paris,fr
s6,rome,it
`
	if _, err := lake.Ingest(ctx, "raw/stations.csv", []byte(geo), "sensor-feed", "dana"); err != nil {
		log.Fatal(err)
	}
	if _, err := lake.Maintain(ctx); err != nil {
		log.Fatal(err)
	}

	// Roles: curators annotate, governance audits, scientists cannot.
	if err := lake.Annotate(ctx, "carl", "raw/stations.csv", "city", "schema.org/City"); err != nil {
		log.Fatal(err)
	}
	if err := lake.Annotate(ctx, "dana", "raw/stations.csv", "city", "nope"); err != nil {
		// Failures carry typed codes: dispatch on the taxonomy, not
		// the message text.
		fmt.Printf("access control: [%s] %v\n", lakeerr.CodeOf(err), err)
	}

	// Derivation + lineage.
	stations, _ := lake.Poly.Rel.Table("stations")
	german := stations.Filter(func(row []string) bool { return row[2] == "de" })
	german.Name = "german_stations"
	if err := lake.Derive(ctx, "dana", "filter_de", []string{"raw/stations.csv"}, german); err != nil {
		log.Fatal(err)
	}
	up, _ := lake.Lineage(ctx, "german_stations")
	fmt.Println("lineage of german_stations:", up)

	// Governance audits who touched the raw data.
	if _, err := lake.QuerySQL(ctx, "dana", "SELECT city FROM rel:stations"); err != nil {
		log.Fatal(err)
	}
	events, err := lake.Audit(ctx, "greta", "raw/stations.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit trail for raw/stations.csv: %d events (last: %s by %s)\n",
		len(events), events[len(events)-1].Kind, events[len(events)-1].User)

	// CLAMS-style cleaning: discover constraints, rank violating
	// triples, let a (scripted) curator confirm.
	tbl, _ := lake.Poly.Rel.Table("stations")
	constraints := clean.DiscoverConstraints(tbl, 0.7)
	ranked := clean.RankViolations(tbl, constraints)
	fmt.Printf("constraint violations found: %d candidate dirty triples\n", len(ranked))
	cleaned, removed := clean.CleanWithOracle(tbl, ranked, func(tr clean.Triple) bool {
		return tr.Predicate == "country" // curator: the country cell is wrong, not the city
	})
	fmt.Printf("cleaned %d cells; row 2 country now %q\n", removed, cell(cleaned, "country", 2))

	// Auto-Validate: learn the station-id format, catch upstream drift.
	col, _ := tbl.Column("station")
	rule := clean.InferRule(col.Cells, 0.01)
	rate, flagged := rule.ValidateBatch([]string{"s7", "s8", "STATION-9"}, 0.05)
	fmt.Printf("validation: violation rate %.2f, drift flagged=%v\n", rate, flagged)

	// Schema evolution: reconstruct the history of an evolving feed.
	vd := workload.GenerateVersions(workload.SchemaVersionSpec{Versions: 6, DocsPer: 8, Seed: 4})
	_, ops, err := evolve.History(vd.Versions)
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, op := range ops {
		lines = append(lines, op.String())
	}
	fmt.Printf("schema evolution history (%d ops):\n  %s\n", len(ops), strings.Join(lines, "\n  "))
}

func cell(t *table.Table, col string, row int) string {
	c, err := t.Column(col)
	if err != nil || row >= c.Len() {
		return "?"
	}
	return c.Cells[row]
}
